//! The global LRW (Least Recently Written) list (paper §3.2).
//!
//! All buffered DRAM blocks sit on one recency list ordered by last written
//! time; writing a block moves it to the MRW (most recently written) end
//! and the background writeback threads pick victims from the LRW end. The
//! structure itself is the shared intrusive list from
//! [`fskit::lrulist`] — the same machinery the page-cache baselines use
//! for plain LRU — parameterized here by *write* recency: only writes call
//! [`LrwList::touch`], never reads.

pub use fskit::lrulist::{RecencyList as LrwList, NIL};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, OpenFlags};
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::PmfsOptions;

    use super::*;
    use crate::fs::Hinfs;
    use crate::HinfsConfig;

    #[test]
    fn lrw_semantics_track_write_recency() {
        let mut l = LrwList::new(4);
        l.push_head(0); // first write
        l.push_head(1);
        l.push_head(2);
        // A write to 0 makes it MRW; reads would NOT touch.
        l.touch(0);
        assert_eq!(l.tail(), Some(1), "LRW victim is the oldest written");
        assert_eq!(l.head(), Some(0));
    }

    #[test]
    fn empty_pool_offers_no_victim() {
        let l = LrwList::new(8);
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.tail(), None, "no eviction candidate on an empty pool");
        assert_eq!(l.head(), None);
        assert_eq!(l.iter_from_tail().count(), 0);
    }

    #[test]
    fn single_block_evict_and_reuse() {
        let mut l = LrwList::new(4);
        l.push_head(3);
        // With one buffered block, victim and MRW coincide.
        assert_eq!(l.tail(), l.head());
        // Touching the sole block must not corrupt the links.
        l.touch(3);
        assert_eq!(l.len(), 1);
        // Evict it: back to empty, and the slot is reusable immediately.
        l.unlink(3);
        assert!(l.is_empty());
        assert_eq!(l.tail(), None);
        l.push_head(3);
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn retouch_reordering_tracks_last_write_only() {
        let mut l = LrwList::new(8);
        for s in 0..4 {
            l.push_head(s);
        }
        // Re-writing the current victim promotes it past everything.
        l.touch(0);
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        // Re-writing the MRW block is a no-op on the order.
        l.touch(0);
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        // A middle block moves to the head; its neighbours re-join.
        l.touch(2);
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![1, 3, 0, 2]);
        // Recency is write recency: every block rewritten once in reverse
        // order fully inverts the list.
        for s in [2, 0, 3, 1] {
            l.touch(s);
        }
        assert_eq!(l.iter_from_tail().collect::<Vec<_>>(), vec![2, 0, 3, 1]);
    }

    /// Writes through the full FS on the virtual clock and checks the LRW
    /// order against the per-slot `last_write_ns` stamps — twice, on two
    /// fresh instances, asserting the order is bit-identical (the
    /// deterministic clock leaves no room for tie-breaking drift).
    #[test]
    fn fs_level_order_is_stable_under_the_deterministic_clock() {
        fn run() -> (Vec<u64>, Vec<u64>) {
            let env = SimEnv::new_virtual(CostModel::default());
            env.set_now(0);
            let dev = NvmmDevice::new_tracked(env, 16384 * BLOCK_SIZE);
            let fs: Arc<Hinfs> = Hinfs::mkfs(
                dev,
                PmfsOptions {
                    journal_blocks: 128,
                    inode_count: 512,
                },
                HinfsConfig::default().with_buffer_bytes(64 * BLOCK_SIZE),
            )
            .unwrap();
            let fd = fs.open("/w", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
            for iblk in 0..5u64 {
                fs.write(fd, iblk * BLOCK_SIZE as u64, &[iblk as u8; 64])
                    .unwrap();
            }
            // Re-write block 1: it must become the MRW end.
            fs.write(fd, BLOCK_SIZE as u64, &[0xEE; 64]).unwrap();
            let ino = fs.stat("/w").unwrap().ino;
            let sh = fs.shard(ino).lock();
            let pool = sh.pool();
            let blocks: Vec<u64> = pool
                .lrw
                .iter_from_tail()
                .map(|s| pool.meta(s).iblk)
                .collect();
            let stamps: Vec<u64> = pool
                .lrw
                .iter_from_tail()
                .map(|s| pool.meta(s).last_write_ns)
                .collect();
            (blocks, stamps)
        }
        let (blocks, stamps) = run();
        assert_eq!(*blocks.last().unwrap(), 1, "re-written block is MRW");
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "write stamps never decrease towards the head: {stamps:?}"
        );
        let (blocks2, stamps2) = run();
        assert_eq!(blocks, blocks2, "same writes, same LRW order");
        assert_eq!(stamps, stamps2, "same writes, same virtual stamps");
    }
}
