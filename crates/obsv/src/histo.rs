//! Lock-free log-bucketed latency histograms.
//!
//! [`Histo::record`] is three relaxed atomic RMWs (bucket, sum, max), so
//! many threads can record concurrently without coordination. Buckets are
//! logarithmic with [`SUB_BUCKETS`] sub-buckets per power of two, which
//! bounds the relative quantile error at `1/SUB_BUCKETS` (12.5%) while
//! keeping the table small enough (496 buckets, ~4 KiB) to embed one
//! histogram per op kind per file system.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;

/// Sub-buckets per power of two; also the count of exact buckets at the
/// low end (values `< SUB_BUCKETS` get a bucket each).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count: every `u64` maps to exactly one bucket.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS as usize;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let sub = (v >> (h - SUB_BITS)) - SUB_BUCKETS;
    (((h - SUB_BITS + 1) as u64 * SUB_BUCKETS) + sub) as usize
}

/// The largest value that maps into bucket `b` (quantiles report this
/// upper edge, so they never under-estimate).
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    if b < SUB_BUCKETS as usize {
        return b as u64;
    }
    let h = (b as u32 >> SUB_BITS) + SUB_BITS - 1;
    let sub = b as u64 & (SUB_BUCKETS - 1);
    ((SUB_BUCKETS + sub + 1) << (h - SUB_BITS)).wrapping_sub(1)
}

/// The smallest value that maps into bucket `b` — with [`bucket_upper`],
/// the bounds an exemplar attached to bucket `b` must fall within.
#[inline]
pub fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        bucket_upper(b - 1).saturating_add(1)
    }
}

/// A concurrent histogram of `u64` samples (latencies in ns, sizes, ...).
#[derive(Debug)]
pub struct Histo {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo::new()
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Histo {
        Histo {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Zeroes every bucket, the sum and the max. For quiescent rebasing
    /// (timeline resets); racing recorders are not torn, merely split
    /// across the reset.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistoSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistoSnapshot {
            buckets: buckets.into_boxed_slice(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histo`], with quantile/merge/diff math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        HistoSnapshot {
            buckets: vec![0; N_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistoSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated within the
    /// bucket the rank lands in and clamped to the exact max. Exact for
    /// the low sub-bucket range; elsewhere within one bucket width
    /// (relative error ≤ `1/SUB_BUCKETS`). Returns 0 for an empty
    /// histogram and is monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).clamp(1.0, self.count as f64);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= rank {
                let upper = bucket_upper(b).min(self.max);
                let lower = if b == 0 {
                    0
                } else {
                    bucket_upper(b - 1).saturating_add(1).min(upper)
                };
                let frac = (rank - cum as f64) / n as f64;
                let v = lower as f64 + frac * (upper - lower) as f64;
                return (v.round() as u64).min(self.max);
            }
            cum += n;
        }
        self.max
    }

    /// Common quantiles, for reports: (p50, p90, p99, p999).
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Merges `other` into `self` (e.g. combining per-thread histograms).
    pub fn merge(&mut self, other: &HistoSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The samples recorded between `earlier` and `self` (`self` must be
    /// the later snapshot of the same histogram).
    ///
    /// The window's `max` is exact when it can be (0 for an empty
    /// window; the running max when a sample inside the window set a new
    /// one). When only the bucket deltas are known — the old max's value
    /// was matched or undercut inside the window — it falls back to the
    /// upper edge of the highest bucket that gained samples, clamped to
    /// the running max, so it never reports a stale maximum from outside
    /// the window or a value no sample could have had.
    pub fn since(&self, earlier: &HistoSnapshot) -> HistoSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = buckets.iter().sum();
        let max = if count == 0 {
            0
        } else if self.max > earlier.max {
            self.max
        } else {
            buckets
                .iter()
                .rposition(|&n| n > 0)
                .map(|b| bucket_upper(b).min(self.max))
                .unwrap_or(0)
        };
        HistoSnapshot {
            buckets: buckets.into_boxed_slice(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_map_is_total_and_monotone() {
        // Every boundary-adjacent value maps into range, and bucket_upper
        // is a true upper bound with bounded relative error.
        let probes: Vec<u64> = (0..=1025)
            .chain((1..64).flat_map(|s| {
                let p = 1u64 << s;
                [p - 1, p, p + 1]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut last_bucket = 0usize;
        let mut last_v = 0u64;
        for &v in &probes {
            let b = bucket_of(v);
            assert!(b < N_BUCKETS, "v={v} bucket {b}");
            if v >= last_v {
                assert!(b >= last_bucket, "bucket map not monotone at {v}");
            }
            let upper = bucket_upper(b);
            assert!(upper >= v, "upper({b})={upper} < v={v}");
            // Relative error bound: upper <= v * (1 + 1/SUB_BUCKETS).
            assert!(
                upper as u128 <= v as u128 + v as u128 / SUB_BUCKETS as u128 + 1,
                "v={v} upper={upper}"
            );
            last_bucket = b;
            last_v = v;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histo::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..SUB_BUCKETS {
            assert_eq!(s.buckets[v as usize], 1);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn quantiles_match_exact_reference() {
        // Uniform 1..=1000, recorded once each: the exact pXX is XX0.
        let h = Histo::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        for (q, exact) in [
            (0.50, 500u64),
            (0.90, 900),
            (0.95, 950),
            (0.99, 990),
            (0.999, 999),
        ] {
            let got = s.quantile(q);
            // Interpolation lands within one bucket width of the exact
            // quantile, on either side.
            let tol = exact / SUB_BUCKETS + 1;
            assert!(
                got.abs_diff(exact) <= tol,
                "q={q}: {got} vs exact {exact} (tol {tol})"
            );
        }
        assert_eq!(s.quantile(1.0), 1000, "p100 is the exact max");
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histo::new();
        for v in [3u64, 90, 90, 4000, 123_456, 123_456, 123_456, 9_999_999] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=100 {
            let v = s.quantile(i as f64 / 100.0);
            assert!(v >= last, "quantile not monotone at q={i}%");
            last = v;
        }
        assert_eq!(last, s.max());
    }

    #[test]
    fn overflow_bucket_quantiles_clamp_to_max() {
        // Samples in the topmost bucket, where the nominal upper edge
        // wraps: quantiles must clamp to the exact recorded max.
        let h = Histo::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 5);
        let s = h.snapshot();
        assert_eq!(s.max(), u64::MAX);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q);
            assert!(got >= u64::MAX - (u64::MAX / SUB_BUCKETS), "q={q}: {got}");
        }
        assert_eq!(s.quantile(1.0), u64::MAX);
        // Single-sample overflow bucket is exact-by-clamp at p100.
        let h2 = Histo::new();
        h2.record(u64::MAX - 1);
        assert_eq!(h2.snapshot().quantile(1.0), u64::MAX - 1);
    }

    #[test]
    fn quantile_degenerate_cases() {
        let h = Histo::new();
        assert_eq!(h.snapshot().quantile(0.5), 0);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.mean(), 7.0);
    }

    #[test]
    fn bucket_lower_partitions_the_value_space() {
        for b in 0..N_BUCKETS {
            assert!(bucket_lower(b) <= bucket_upper(b), "bucket {b} inverted");
            assert_eq!(bucket_of(bucket_lower(b)), b, "lower edge of {b}");
            assert_eq!(bucket_of(bucket_upper(b)), b, "upper edge of {b}");
            if b > 0 {
                assert_eq!(bucket_lower(b), bucket_upper(b - 1) + 1, "gap at {b}");
            }
        }
    }

    #[test]
    fn empty_histogram_every_quantile_is_zero() {
        let s = Histo::new().snapshot();
        assert_eq!(s.count(), 0);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
        assert_eq!(s.percentiles(), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_bucket_quantiles_stay_inside_the_bucket() {
        // Many samples of one value: every quantile must land inside
        // that value's bucket bounds and at or below the exact max.
        let h = Histo::new();
        let v = 12_345u64;
        for _ in 0..1000 {
            h.record(v);
        }
        let s = h.snapshot();
        let b = bucket_of(v);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let got = s.quantile(q);
            assert!(got >= bucket_lower(b), "q={q}: {got} below bucket");
            assert!(got <= v, "q={q}: {got} above exact max");
        }
        assert_eq!(s.quantile(1.0), v);
    }

    #[test]
    fn p999_on_sparse_buckets() {
        // 999 fast samples and one extreme outlier: rank 999 of 1000
        // still lands in the fast bucket, so p999 must NOT jump to the
        // outlier...
        let h = Histo::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000_000);
        let s = h.snapshot();
        let p999 = s.quantile(0.999);
        assert!(
            p999 <= bucket_upper(bucket_of(100)),
            "p999={p999} overshoots the fast bucket"
        );
        assert_eq!(s.quantile(1.0), 1_000_000_000);
        // ...but with >0.1% of samples in the outlier bucket, p999 must
        // land inside the outlier's bucket bounds despite the huge gap
        // of empty buckets in between.
        let h2 = Histo::new();
        for _ in 0..995 {
            h2.record(100);
        }
        for _ in 0..5 {
            h2.record(1_000_000_000);
        }
        let s2 = h2.snapshot();
        let p999 = s2.quantile(0.999);
        let ob = bucket_of(1_000_000_000);
        assert!(
            p999 >= bucket_lower(ob) && p999 <= 1_000_000_000,
            "p999={p999} outside the outlier bucket [{}..=1e9]",
            bucket_lower(ob)
        );
        assert!(s2.quantile(0.99) <= bucket_upper(bucket_of(100)));
    }

    #[test]
    fn merge_and_since_roundtrip() {
        let h = Histo::new();
        h.record(10);
        h.record(100);
        let early = h.snapshot();
        h.record(1000);
        h.record(1000);
        let late = h.snapshot();
        let delta = late.since(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 2000);
        let mut merged = early.clone();
        merged.merge(&delta);
        assert_eq!(merged.count(), late.count());
        assert_eq!(merged.sum(), late.sum());
        assert_eq!(merged.quantile(0.5), late.quantile(0.5));
    }

    #[test]
    fn windowed_max_is_zero_for_an_empty_window() {
        let h = Histo::new();
        h.record(5_000_000);
        let s = h.snapshot();
        let d = s.since(&s);
        assert_eq!(d.count(), 0);
        assert_eq!(d.max(), 0, "empty window must not report a stale max");
        assert_eq!(d.quantile(0.99), 0);
    }

    #[test]
    fn windowed_max_is_exact_when_the_window_sets_a_new_max() {
        let h = Histo::new();
        h.record(100);
        let early = h.snapshot();
        h.record(777_777);
        let d = h.snapshot().since(&early);
        assert_eq!(d.count(), 1);
        assert_eq!(d.max(), 777_777, "new running max is the window's max");
    }

    #[test]
    fn windowed_max_is_bounded_when_the_old_max_still_stands() {
        // A huge sample before the window, small samples inside it: the
        // window max must stay inside the small samples' bucket instead
        // of reporting the pre-window outlier.
        let h = Histo::new();
        h.record(1_000_000_000);
        let early = h.snapshot();
        h.record(100);
        h.record(120);
        let d = h.snapshot().since(&early);
        assert_eq!(d.count(), 2);
        assert!(
            d.max() <= bucket_upper(bucket_of(120)),
            "window max {} leaked the pre-window outlier",
            d.max()
        );
        assert!(d.max() >= 120, "window max under-reports the window");
        // Re-recording exactly the old max inside the window clamps to
        // the true value (the max's own bucket gained a sample).
        let early2 = h.snapshot();
        h.record(1_000_000_000);
        let d2 = h.snapshot().since(&early2);
        assert_eq!(d2.count(), 1);
        assert_eq!(d2.max(), 1_000_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histo::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 80_000);
        assert_eq!(s.max(), 7 * 10_000 + 9_999);
    }
}
