//! The simulation environment: clocks, time modes, and cost charging.
//!
//! A [`SimEnv`] is shared (via `Arc`) by every device and file system in one
//! simulated machine. All simulated time flows through [`SimEnv::charge`]
//! and [`SimEnv::nvmm_persist`], which both attribute the time to a ledger
//! category and advance the caller's clock — either a per-thread logical
//! clock ([`TimeMode::Virtual`]) or the wall clock via a calibrated
//! busy-wait ([`TimeMode::Spin`]).
//!
//! In virtual mode a scheduler multiplexes many *logical actors* onto one
//! OS thread by saving/restoring the thread-local clock around each actor
//! step ([`SimEnv::set_now`] / [`SimEnv::with_now`]).

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use obsv::{ContentionTable, Site};

use crate::cost::CostModel;
use crate::gate::BandwidthGate;
use crate::ledger::{self, Cat};

/// How simulated time is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeMode {
    /// Deterministic logical nanoseconds on a per-thread clock. Experiments
    /// use this mode; it is independent of the host CPU.
    Virtual,
    /// Real busy-wait delays, like the paper's RDTSCP spin-loop emulator.
    /// Criterion benchmarks use this mode.
    Spin,
}

thread_local! {
    static NOW: Cell<u64> = const { Cell::new(0) };
}

/// The shared simulation environment of one emulated machine.
#[derive(Debug)]
pub struct SimEnv {
    mode: TimeMode,
    cost: CostModel,
    epoch: Instant,
    gate: BandwidthGate,
    /// The machine's lock-contention and stall profiler. Every tracked
    /// lock on this machine attaches to it, so one bench cell (one
    /// `SimEnv`) owns exactly one contention timeline.
    contention: Arc<ContentionTable>,
}

impl SimEnv {
    /// Creates an environment in the given mode with the given cost model.
    pub fn new(mode: TimeMode, cost: CostModel) -> Arc<Self> {
        let epoch = Instant::now();
        // The profiler reads the same clock the environment serves:
        // per-thread logical ns in virtual mode, wall ns since the epoch
        // in spin mode. It only reads — profiling never advances time.
        let contention = Arc::new(match mode {
            TimeMode::Virtual => ContentionTable::new(|| NOW.with(|n| n.get())),
            TimeMode::Spin => ContentionTable::new(move || epoch.elapsed().as_nanos() as u64),
        });
        let gate = BandwidthGate::new(cost.writer_slots(), cost.nvmm_write_bandwidth);
        gate.attach_contention(&contention);
        Arc::new(SimEnv {
            mode,
            cost,
            epoch,
            gate,
            contention,
        })
    }

    /// Deterministic virtual-time environment (the default for experiments).
    pub fn new_virtual(cost: CostModel) -> Arc<Self> {
        Self::new(TimeMode::Virtual, cost)
    }

    /// Busy-wait environment, like the paper's emulator.
    pub fn new_spin(cost: CostModel) -> Arc<Self> {
        Self::new(TimeMode::Spin, cost)
    }

    /// The time mode of this environment.
    pub fn mode(&self) -> TimeMode {
        self.mode
    }

    /// The cost model of this environment.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The NVMM write-bandwidth gate.
    pub fn gate(&self) -> &BandwidthGate {
        &self.gate
    }

    /// The machine's lock-contention and stall profiler.
    pub fn contention(&self) -> &Arc<ContentionTable> {
        &self.contention
    }

    /// Current time in nanoseconds: the thread's logical clock in virtual
    /// mode, or wall time since environment creation in spin mode.
    pub fn now(&self) -> u64 {
        match self.mode {
            TimeMode::Virtual => NOW.with(|n| n.get()),
            TimeMode::Spin => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Sets the thread's logical clock. No-op in spin mode (wall time cannot
    /// be set). The virtual-time scheduler calls this when switching actors.
    pub fn set_now(&self, t: u64) {
        if self.mode == TimeMode::Virtual {
            NOW.with(|n| n.set(t));
        }
    }

    /// Runs `f` with the thread clock set to `t`, restoring the previous
    /// clock afterwards. Returns `f`'s result and the clock value reached
    /// inside `f` (in spin mode: wall time after `f`).
    ///
    /// This is how the background writeback *actor* runs on a foreground
    /// thread in virtual mode without charging its work to the foreground
    /// clock.
    pub fn with_now<R>(&self, t: u64, f: impl FnOnce() -> R) -> (R, u64) {
        match self.mode {
            TimeMode::Virtual => NOW.with(|n| {
                let prev = n.get();
                n.set(t);
                let r = f();
                let end = n.get();
                n.set(prev);
                (r, end)
            }),
            TimeMode::Spin => {
                let r = f();
                (r, self.now())
            }
        }
    }

    /// Charges `ns` nanoseconds to `cat`: advances the clock (virtual) or
    /// busy-waits (spin) and records the time in the thread ledger.
    pub fn charge(&self, cat: Cat, ns: u64) {
        if ns == 0 {
            return;
        }
        ledger::add(cat, ns);
        match self.mode {
            TimeMode::Virtual => NOW.with(|n| n.set(n.get() + ns)),
            TimeMode::Spin => spin_for(ns),
        }
    }

    /// Charges the DRAM cost of copying `bytes` (either direction) to `cat`.
    pub fn charge_dram_copy(&self, cat: Cat, bytes: usize) {
        self.charge(cat, self.cost.dram_copy_ns(bytes));
    }

    /// Charges the fixed per-call software overhead to [`Cat::Syscall`].
    pub fn charge_syscall(&self) {
        self.charge(Cat::Syscall, self.cost.syscall_ns);
    }

    /// Charges one store fence to [`Cat::Fence`].
    pub fn charge_fence(&self) {
        self.charge(Cat::Fence, self.cost.fence_ns);
    }

    /// Rebases the timeline: resets the bandwidth gate's servers to idle
    /// and the thread clock to zero (virtual mode). Harnesses call this
    /// after setup (mkfs, preallocation) so measurements start from a quiet
    /// device instead of queueing behind setup traffic.
    pub fn rebase(&self) {
        self.gate.reset();
        self.contention.reset();
        self.set_now(0);
    }

    /// Persists `lines` cachelines to NVMM through the bandwidth gate:
    /// charges the service time plus any queueing delay to `cat`.
    ///
    /// Admission is per cacheline — the unit real memory controllers
    /// schedule at — so concurrent writers interleave fairly instead of a
    /// small flush waiting behind another thread's whole-block write.
    pub fn nvmm_persist(&self, cat: Cat, lines: usize) {
        if lines == 0 {
            return;
        }
        let line_ns = self.cost.nvmm_write_latency_ns;
        match self.mode {
            TimeMode::Virtual => {
                let start = self.now();
                let mut now = start;
                for _ in 0..lines {
                    now = self.gate.admit(now, line_ns);
                }
                ledger::add(cat, now - start);
                // Queueing delay beyond pure service time is bandwidth
                // throttling: attribute it as an explicit stall site
                // (this only *records* — the clock advance below is the
                // same with profiling on or off).
                let queued = (now - start).saturating_sub(line_ns * lines as u64);
                if queued > 0 {
                    self.contention.stall(Site::StallThrottle, queued);
                }
                NOW.with(|n| n.set(now));
            }
            TimeMode::Spin => {
                for _ in 0..lines {
                    self.gate.acquire();
                    spin_for(line_ns);
                    self.gate.release();
                }
                ledger::add(cat, self.cost.nvmm_persist_ns(lines));
            }
        }
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
fn spin_for(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn venv() -> Arc<SimEnv> {
        SimEnv::new_virtual(CostModel::default())
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let env = venv();
        env.set_now(0);
        ledger::reset();
        assert_eq!(env.now(), 0);
        env.charge(Cat::Other, 100);
        assert_eq!(env.now(), 100);
        env.charge(Cat::Other, 0);
        assert_eq!(env.now(), 100);
    }

    #[test]
    fn with_now_restores_outer_clock() {
        let env = venv();
        env.set_now(500);
        let ((), inner_end) = env.with_now(2_000, || {
            env.charge(Cat::Writeback, 300);
        });
        assert_eq!(inner_end, 2_300);
        assert_eq!(env.now(), 500);
    }

    #[test]
    fn persist_sequential_writer_pays_pure_latency() {
        // A lone writer never queues behind itself: 64 lines cost exactly
        // 64 × L_nvmm.
        let env = venv();
        ledger::reset();
        env.set_now(0);
        env.nvmm_persist(Cat::UserWrite, 64);
        assert_eq!(env.now(), env.cost().nvmm_persist_ns(64));
    }

    #[test]
    fn persist_queues_when_bandwidth_saturated() {
        let env = venv();
        ledger::reset();
        // Many writers issuing lines at t=0 overwhelm the first
        // microsecond of device bandwidth; the next writer is pushed out.
        let per_bucket = env.gate().lines_per_bucket();
        for _ in 0..per_bucket {
            env.set_now(0);
            env.nvmm_persist(Cat::UserWrite, 1);
            assert!(env.now() <= 1_000 + 200, "early lines are unqueued");
        }
        env.set_now(0);
        env.nvmm_persist(Cat::UserWrite, 1);
        assert!(
            env.now() >= 1_000,
            "line issued into a saturated microsecond is pushed to the next bucket ({} ns)",
            env.now()
        );
    }

    #[test]
    fn ledger_records_charges() {
        let env = venv();
        ledger::reset();
        env.set_now(0);
        env.charge_dram_copy(Cat::UserRead, 4096);
        let snap = ledger::snapshot();
        assert_eq!(snap.get(Cat::UserRead), env.cost().dram_copy_ns(4096));
    }

    #[test]
    fn spin_mode_advances_wall_clock() {
        let env = SimEnv::new_spin(CostModel::default());
        let t0 = env.now();
        env.charge(Cat::Other, 200_000); // 200 us, measurable
        let t1 = env.now();
        assert!(t1 - t0 >= 200_000);
        // set_now is a no-op in spin mode.
        env.set_now(0);
        assert!(env.now() >= t1);
    }

    #[test]
    fn syscall_and_fence_charges() {
        let env = venv();
        ledger::reset();
        env.set_now(0);
        env.charge_syscall();
        env.charge_fence();
        let snap = ledger::snapshot();
        assert_eq!(snap.get(Cat::Syscall), env.cost().syscall_ns);
        assert_eq!(snap.get(Cat::Fence), env.cost().fence_ns);
        assert_eq!(env.now(), env.cost().syscall_ns + env.cost().fence_ns);
    }
}
