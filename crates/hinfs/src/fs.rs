//! The HiNFS file system object.
//!
//! HiNFS shares PMFS's persistent structures and namespace (the paper built
//! it inside PMFS) and replaces the data path:
//!
//! - **Writes** go through the Eager-Persistent Write Checker. Lazy-
//!   persistent writes land in the DRAM buffer at cacheline granularity;
//!   eager-persistent writes copy once, straight to NVMM (§3.3.2).
//! - **Reads** copy once, stitched from DRAM and NVMM per the Cacheline
//!   Bitmap (§3.3.1).
//! - **fsync** flushes the file's dirty buffer blocks, commits its ordered
//!   transactions, and feeds the Buffer Benefit Model.
//!
//! Lock order: inode `RwLock` → buffer shard mutex → journal mutex. A
//! file's buffered state lives entirely in shard `ino % cfg.shards`, so a
//! per-file path holds at most one shard lock; only mount-wide sweeps
//! (flush-all, introspection) visit several shards, and they do so one at
//! a time, never nested.

use std::collections::HashSet;
use std::sync::Arc;

use fskit::{DirEntry, Fd, FileSystem, FileType, FsError, MmapHandle, OpenFlags, Result, Stat};
use nvmm::{Cat, NvmmDevice, SimEnv, BLOCK_SIZE, CACHELINE};
use obsv::{FsObs, OpKind, Phase, Site, TraceEvent, TrackedMutex};
use pmfs::inode::InodeMem;
use pmfs::{Layout, Pmfs, PmfsOptions, TxHandle};

use crate::buffer::{covered_mask, range_mask, runs, Shared, FULL_MASK};
use crate::checker;
use crate::stats::HinfsStats;
use crate::tracker;
use crate::writeback::{FlushTry, WbCtl};
use crate::HinfsConfig;

/// A mounted HiNFS instance.
pub struct Hinfs {
    pub(crate) inner: Arc<Pmfs>,
    pub(crate) env: Arc<SimEnv>,
    pub(crate) cfg: HinfsConfig,
    /// The buffer pool, split into independent shards keyed `ino % shards`
    /// — a file's blocks, index, LRW position and open transactions all
    /// live in exactly one shard, so per-file paths take one shard lock.
    pub(crate) shards: Vec<TrackedMutex<Shared>>,
    pub(crate) stats: HinfsStats,
    pub(crate) obs: Arc<FsObs>,
    pub(crate) wb: WbCtl,
}

impl Hinfs {
    /// Formats `dev` and mounts HiNFS on it.
    pub fn mkfs(dev: Arc<NvmmDevice>, popts: PmfsOptions, cfg: HinfsConfig) -> Result<Arc<Hinfs>> {
        let inner = Pmfs::mkfs(dev, popts)?;
        Self::wrap(inner, cfg)
    }

    /// Mounts HiNFS on an existing PMFS-formatted device (running PMFS
    /// journal recovery as needed — HiNFS adds no persistent structures of
    /// its own; everything buffered is volatile by design).
    pub fn mount(dev: Arc<NvmmDevice>, cfg: HinfsConfig) -> Result<Arc<Hinfs>> {
        let inner = Pmfs::mount(dev)?;
        Self::wrap(inner, cfg)
    }

    fn wrap(inner: Arc<Pmfs>, cfg: HinfsConfig) -> Result<Arc<Hinfs>> {
        let env = inner.env().clone();
        let nshards = cfg.shards.max(1);
        let shards = (0..nshards)
            .map(|i| {
                TrackedMutex::attached(
                    env.contention(),
                    Site::hinfs_shard(i),
                    Shared::init(cfg.shard_blocks(i)),
                )
            })
            .collect();
        let fs = Arc::new(Hinfs {
            shards,
            stats: HinfsStats::new(),
            obs: Arc::new(FsObs::default()),
            wb: WbCtl::new(nshards),
            inner,
            env,
            cfg,
        });
        fs.wb.attach_contention(fs.env.contention());
        // Journal commits land on the same trace timeline as writeback.
        fs.inner.journal().set_trace(fs.obs.trace.clone());
        fs.obs.set_spans(fs.inner.device().spans().clone());
        fs.start_background();
        Ok(fs)
    }

    /// Runtime counters.
    pub fn stats(&self) -> &HinfsStats {
        &self.stats
    }

    /// Latency histograms, slow-op log and trace ring.
    pub fn obs(&self) -> &Arc<FsObs> {
        &self.obs
    }

    /// Runs `f` as operation `op`, recording its latency when timing is
    /// enabled (one relaxed load otherwise).
    fn timed<T>(&self, op: OpKind, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.inner.device().spans().op_scope(
            op,
            || self.env.now(),
            || {
                let _lin = self.obs.lineage().op_scope(op);
                if !self.obs.timing_enabled() {
                    return f();
                }
                let start = self.env.now();
                let flight = self.obs.flight();
                flight.begin(op, start, self.obs.trace.emitted());
                let r = f();
                let end = self.env.now();
                flight.finish(end.saturating_sub(start), self.obs.trace.emitted());
                self.obs.record_op(op, end.saturating_sub(start), start);
                r
            },
        )
    }

    /// The mount configuration.
    pub fn config(&self) -> &HinfsConfig {
        &self.cfg
    }

    /// The underlying PMFS instance (shared persistent structures).
    pub fn pmfs(&self) -> &Arc<Pmfs> {
        &self.inner
    }

    /// The simulation environment.
    pub fn env(&self) -> &Arc<SimEnv> {
        &self.env
    }

    pub(crate) fn dev(&self) -> &Arc<NvmmDevice> {
        self.inner.device()
    }

    /// Index of the buffer shard owning `ino`.
    pub(crate) fn shard_idx(&self, ino: u64) -> usize {
        (ino % self.shards.len() as u64) as usize
    }

    /// The buffer shard owning `ino`.
    pub(crate) fn shard(&self, ino: u64) -> &TrackedMutex<Shared> {
        let idx = self.shard_idx(ino);
        obsv::note_shard(idx as u32);
        &self.shards[idx]
    }

    // ----- write path -----

    /// Headroom (in 64 B entries) a single inode-core transaction needs:
    /// two undo entries plus the reserved commit slot, with slack.
    const TX_HEADROOM: u64 = 8;

    /// Headroom a namespace operation (create/unlink/rename with its
    /// directory-entry edits) may need.
    const NS_HEADROOM: u64 = 64;

    /// Books the simulated time elapsed since `t0` as a stall at `site`
    /// (no-op when the profiler is off or no time passed).
    fn note_stall(&self, site: Site, t0: u64) {
        let c = self.env.contention();
        if !c.enabled() {
            return;
        }
        let dt = self.env.now().saturating_sub(t0);
        if dt > 0 {
            c.stall(site, dt);
        }
    }

    /// Relieves journal pressure before a namespace operation delegates to
    /// PMFS: open lazy transactions are what pins the ring, and only HiNFS
    /// can flush them.
    fn relieve_for_namespace(&self) {
        if self.inner.journal().free_entries() < Self::NS_HEADROOM {
            let t0 = self.env.now();
            self.flush_all_opportunistic();
            self.note_stall(Site::StallJournalFull, t0);
        }
    }

    /// Begins a journal transaction, relieving journal pressure by flushing
    /// (and thereby committing) open lazy transactions if the ring is
    /// nearly full — first this file's, then, best-effort, everyone's.
    fn begin_tx(&self, ino: u64, state: &mut InodeMem) -> Result<TxHandle> {
        if self.inner.journal().free_entries() < Self::TX_HEADROOM {
            let t0 = self.env.now();
            self.fsync_core(ino, state, false)?;
            if self.inner.journal().free_entries() < Self::TX_HEADROOM {
                self.flush_all_opportunistic();
            }
            self.note_stall(Site::StallJournalFull, t0);
        }
        match self.inner.journal().begin() {
            Ok(tx) => Ok(tx),
            Err(FsError::JournalFull) => {
                let t0 = self.env.now();
                self.fsync_core(ino, state, false)?;
                self.note_stall(Site::StallJournalFull, t0);
                self.inner.journal().begin()
            }
            Err(e) => Err(e),
        }
    }

    /// The shared write path: a gather list of slices lands as one
    /// contiguous run at `off_req` (or EOF in append mode). One syscall
    /// charge, one inode write lock, one metadata journal transaction and
    /// one watermark check cover the whole vector — `write`/`append` pass
    /// a single slice, `write_vectored` passes the caller's iovec.
    fn write_impl(&self, fd: Fd, off_req: u64, iovs: &[&[u8]], append: bool) -> Result<u64> {
        self.env.charge_syscall();
        let of = self.inner.open_file(fd)?;
        if !of.flags.writable() {
            return Err(FsError::BadFd);
        }
        let ino = of.ino;
        let mut guard = of.handle.state.write();
        let state = &mut *guard;
        let off = if append || of.flags.contains(OpenFlags::APPEND) {
            state.size
        } else {
            off_req
        };
        let total: u64 = iovs.iter().map(|s| s.len() as u64).sum();
        if total == 0 {
            return Ok(off);
        }
        let end = off
            .checked_add(total)
            .filter(|&e| e <= pmfs::file::MAX_FILE_SIZE)
            .ok_or(FsError::FileTooLarge)?;
        obsv::note_logical(total);
        let now = self.env.now();
        let case1 = of.flags.contains(OpenFlags::SYNC) || self.cfg.sync_mount;
        let old_size = state.size;
        let old_blocks = state.blocks;

        let mut pending: HashSet<u64> = HashSet::new();
        // POSIX: a write beyond EOF exposes the gap as zeroes. The block
        // holding the old end of file may carry stale bytes past EOF on
        // NVMM (the flush path only zeroes up to EOF), so zero the in-block
        // gap explicitly before the size grows over it.
        if off > old_size && old_size % BLOCK_SIZE as u64 != 0 {
            let bblk = old_size / BLOCK_SIZE as u64;
            let gap_end = off.min((bblk + 1) * BLOCK_SIZE as u64);
            let materialized = {
                let sh = self.shard(ino).lock();
                sh.slot_of(ino, bblk).is_some()
            } || pmfs::tree::lookup(self.dev(), state, bblk).is_some();
            if materialized && gap_end > old_size {
                let in_blk = (old_size % BLOCK_SIZE as u64) as usize;
                let zeros = vec![0u8; (gap_end - old_size) as usize];
                self.buffered_write_chunk(ino, state, bblk, in_blk, &zeros, now)?;
                let mut sh = self.shard(ino).lock();
                checker::record_write(
                    sh.file_mut(ino),
                    bblk,
                    range_mask(in_blk, zeros.len()),
                    true,
                );
                pending.insert(bblk);
            }
        }
        let mut done: u64 = 0;
        for data in iovs {
            let mut idone = 0;
            while idone < data.len() {
                let pos = off + done;
                let iblk = pos / BLOCK_SIZE as u64;
                let in_blk = (pos % BLOCK_SIZE as u64) as usize;
                let chunk = (BLOCK_SIZE - in_blk).min(data.len() - idone);
                let payload = &data[idone..idone + chunk];
                let mask = range_mask(in_blk, chunk);

                let eager = case1 || {
                    let mut sh = self.shard(ino).lock();
                    checker::is_eager_block(&self.cfg, sh.file_mut(ino), iblk, now)
                };
                if !eager {
                    self.buffered_write_chunk(ino, state, iblk, in_blk, payload, now)?;
                    let mut sh = self.shard(ino).lock();
                    checker::record_write(sh.file_mut(ino), iblk, mask, true);
                    HinfsStats::bump(&self.stats.lazy_writes, 1);
                    pending.insert(iblk);
                } else {
                    // Eager-persistent: the block's data must be on NVMM
                    // when the write completes.
                    let mut absorbed = false;
                    {
                        let mut sh = self.shard(ino).lock();
                        if let Some(slot) = sh.slot_of(ino, iblk) {
                            if case1 {
                                // Case 1 on a buffered block: apply the
                                // write to DRAM, then explicitly evict
                                // (flush) it before returning to the user
                                // (paper §3.3.2).
                                let partial = mask & !covered_mask(in_blk, chunk);
                                self.ensure_lines(&mut sh, slot, partial);
                                self.apply_to_slot(&mut sh, slot, in_blk, payload, now);
                                absorbed = true;
                            }
                            // Either way the buffered copy leaves the buffer
                            // so NVMM stays the single source of truth.
                            let _ = self.evict_slot_locked(
                                &mut sh,
                                slot,
                                Some(state),
                                obsv::DrainKind::Sync,
                            )?;
                        }
                    }
                    if !absorbed {
                        pmfs::file::write_at(
                            self.dev(),
                            self.inner.allocator(),
                            state,
                            pos,
                            payload,
                            now,
                        )?;
                        // Eager-persistent: durable at op return, lag 0.
                        self.obs.lineage().record_inline_drain(payload.len() as u64);
                    }
                    let mut sh = self.shard(ino).lock();
                    checker::record_write(sh.file_mut(ino), iblk, mask, false);
                    if case1 {
                        HinfsStats::bump(&self.stats.sync_writes, 1);
                    } else {
                        HinfsStats::bump(&self.stats.eager_writes, 1);
                    }
                }
                idone += chunk;
                done += chunk as u64;
            }
        }

        if end > state.size {
            state.size = end;
        }
        state.mtime = now;
        // Metadata durability (ordered mode): a transaction journals the
        // inode core now; its commit record waits for the buffered data.
        if state.size != old_size || state.blocks != old_blocks {
            let tx = self.begin_tx(ino, state)?;
            if let Err(e) = self.inner.log_write_inode(&tx, ino, state) {
                // Abort rather than leak the reservation: an open tx record
                // would pin the journal ring forever.
                self.inner.journal().abort(tx);
                return Err(e);
            }
            let mut sh = self.shard(ino).lock();
            // A reclaim may already have flushed some of this op's blocks
            // (pool pressure mid-write); only still-dirty blocks gate the
            // commit.
            pending.retain(|&iblk| {
                sh.slot_of(ino, iblk)
                    .is_some_and(|s| sh.pool().meta(s).dirty != 0)
            });
            let tstamp = self.obs.lineage().stamp(now, self.obs.trace.emitted());
            let file = sh.file_mut(ino);
            tracker::enqueue(file, tx, pending, tstamp, &self.stats);
            // A commit that happens here runs inside the op that logged
            // it — the metadata is durable before the ack.
            tracker::drain_ready(
                file,
                self.inner.journal(),
                self.obs.lineage(),
                obsv::DrainKind::Sync,
                now,
                &self.stats,
            );
        }
        if case1 {
            // O_SYNC semantics: data *and* metadata durable on return.
            self.fsync_core(ino, state, false)?;
        }
        drop(guard);

        // Wake the background writeback when the file's shard runs low
        // (Low_f, applied to the shard's own capacity).
        let low = {
            let sh = self.shard(ino).lock();
            let free = sh.pool().free_count();
            let low_mark = self.cfg.low_blocks_of(sh.pool().capacity());
            if free < low_mark {
                self.obs.trace.emit(now, || TraceEvent::WatermarkLow {
                    free: free as u64,
                    low: low_mark as u64,
                });
            }
            free < low_mark
        };
        if low {
            self.kick_background(self.env.now());
        }
        Ok(off)
    }

    /// Copies `payload` into an existing buffer slot (no fetch — the slot's
    /// missing partial lines must already be valid).
    fn apply_to_slot(&self, sh: &mut Shared, slot: u32, in_blk: usize, payload: &[u8], now: u64) {
        self.inner.device().spans().scope(
            Phase::DramCopy,
            || self.env.now(),
            || {
                let mask = range_mask(in_blk, payload.len());
                // A buffered write pays the DRAM write latency per touched
                // cacheline — the `N_cw · L_dram` term of the Buffer Benefit Model
                // (Inequality 1). This is what makes buffering *not* free relative
                // to a direct NVMM write when no coalescing follows.
                self.env.charge(
                    Cat::UserWrite,
                    mask.count_ones() as u64 * self.env.cost().dram_write_latency_ns,
                );
                obsv::note_buffered(payload.len() as u64);
                sh.pool_mut().block_mut(slot)[in_blk..in_blk + payload.len()]
                    .copy_from_slice(payload);
                let was_clean = sh.pool().meta(slot).dirty == 0;
                {
                    let m = sh.pool_mut().meta_mut(slot);
                    m.valid |= mask;
                    m.dirty |= mask;
                    m.last_write_ns = now;
                }
                if was_clean && mask != 0 {
                    sh.dirty_blocks += 1;
                    // The clean→dirty transition is the ack the durability
                    // lag is measured from.
                    sh.pool_mut().meta_mut(slot).stamp =
                        self.obs.lineage().stamp(now, self.obs.trace.emitted());
                }
                sh.pool_mut().lrw.touch(slot);
            },
        );
    }

    /// Fetches (CLFW) the lines in `need` that are not yet valid in `slot`,
    /// from NVMM when the block is mapped or as zeroes for holes.
    fn ensure_lines(&self, sh: &mut Shared, slot: u32, need: u64) {
        let meta = *sh.pool().meta(slot);
        let miss = need & !meta.valid;
        if miss == 0 {
            return;
        }
        if meta.nvmm_block != 0 {
            let base = Layout::block_off(meta.nvmm_block);
            for (start, n) in runs(miss) {
                let b = start as usize * CACHELINE;
                let len = n as usize * CACHELINE;
                let dev = self.dev().clone();
                dev.read(
                    Cat::Fetch,
                    base + b as u64,
                    &mut sh.pool_mut().block_mut(slot)[b..b + len],
                );
            }
            HinfsStats::bump(&self.stats.fetch_lines, miss.count_ones() as u64);
        } else {
            // Hole: the backing content is zeroes.
            for (start, n) in runs(miss) {
                let b = start as usize * CACHELINE;
                let len = n as usize * CACHELINE;
                sh.pool_mut().block_mut(slot)[b..b + len].fill(0);
            }
            self.env
                .charge_dram_copy(Cat::Fetch, miss.count_ones() as usize * CACHELINE);
        }
        sh.pool_mut().meta_mut(slot).valid |= miss;
    }

    /// Lazy-persistent write of one chunk into the DRAM buffer.
    fn buffered_write_chunk(
        &self,
        ino: u64,
        state: &mut InodeMem,
        iblk: u64,
        in_blk: usize,
        payload: &[u8],
        now: u64,
    ) -> Result<()> {
        let touched = range_mask(in_blk, payload.len());
        let covered = covered_mask(in_blk, payload.len());
        // Per-block buffer management software cost (DRAM Block Index
        // insert/lookup, LRW maintenance, allocation) — the same class of
        // overhead the page-cache baselines pay per page. This is part of
        // why an uncoalesced buffered write is *worse* than a direct one
        // (paper §3.3.2) beyond the pure `L_dram` term.
        self.inner.device().spans().scope(
            Phase::BufLookup,
            || self.env.now(),
            || {
                self.env.charge(Cat::Other, self.env.cost().page_cache_ns);
            },
        );
        loop {
            let mut sh = self.shard(ino).lock();
            if let Some(slot) = sh.slot_of(ino, iblk) {
                HinfsStats::bump(&self.stats.buffer_hits, 1);
                let fetch_need = if self.cfg.clfw {
                    touched & !covered
                } else {
                    FULL_MASK
                };
                self.ensure_lines(&mut sh, slot, fetch_need);
                self.apply_to_slot(&mut sh, slot, in_blk, payload, now);
                if !self.cfg.clfw {
                    let m = sh.pool_mut().meta_mut(slot);
                    m.valid = FULL_MASK;
                    m.dirty = FULL_MASK;
                }
                return Ok(());
            }
            let Some(slot) = sh.pool_mut().alloc_slot(ino, iblk, now) else {
                // Pool exhausted before background writeback caught up: the
                // foreground pays for one reclaim itself (the stall).
                drop(sh);
                HinfsStats::bump(&self.stats.foreground_stalls, 1);
                self.obs
                    .trace
                    .emit(now, || TraceEvent::ForegroundStall { ino });
                let t0 = self.env.now();
                self.reclaim(self.shard_idx(ino), 1, Some((ino, state)), false);
                self.note_stall(Site::StallWriteback, t0);
                continue;
            };
            HinfsStats::bump(&self.stats.buffer_misses, 1);
            // Bind the NVMM backing (if mapped) into the Index Node.
            let pblk = pmfs::tree::lookup(self.dev(), state, iblk).unwrap_or(0);
            sh.pool_mut().meta_mut(slot).nvmm_block = pblk;
            sh.file_mut(ino).index.insert(iblk, slot);
            let fetch_need = if self.cfg.clfw {
                touched & !covered
            } else {
                FULL_MASK
            };
            self.ensure_lines(&mut sh, slot, fetch_need);
            self.apply_to_slot(&mut sh, slot, in_blk, payload, now);
            if !self.cfg.clfw {
                let m = sh.pool_mut().meta_mut(slot);
                m.valid = FULL_MASK;
                m.dirty = FULL_MASK;
            }
            return Ok(());
        }
    }

    // ----- read path -----

    fn read_impl(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        self.env.charge_syscall();
        let of = self.inner.open_file(fd)?;
        if !of.flags.readable() {
            return Err(FsError::BadFd);
        }
        let guard = of.handle.state.read();
        let state = &*guard;
        if off >= state.size {
            return Ok(0);
        }
        let n = buf.len().min((state.size - off) as usize);
        let mut done = 0;
        while done < n {
            let pos = off + done as u64;
            let iblk = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - in_blk).min(n - done);
            let out = &mut buf[done..done + chunk];
            let sh = self.shard(of.ino).lock();
            match sh.slot_of(of.ino, iblk) {
                Some(slot) => {
                    self.inner.device().spans().scope(
                        Phase::CachelineStitch,
                        || self.env.now(),
                        || {
                            let meta = *sh.pool().meta(slot);
                            let rmask = range_mask(in_blk, chunk);
                            // Stitch: valid lines from DRAM, the rest from
                            // NVMM (or zero for holes). One copy per
                            // consecutive run.
                            for (start, nl) in runs(rmask & meta.valid) {
                                let (s, e) = clip(start, nl, in_blk, chunk);
                                out[s - in_blk..e - in_blk]
                                    .copy_from_slice(&sh.pool().block(slot)[s..e]);
                                self.env.charge_dram_copy(Cat::UserRead, e - s);
                            }
                            let nvmm_mask = rmask & !meta.valid;
                            if nvmm_mask != 0 {
                                let pblk = if meta.nvmm_block != 0 {
                                    Some(meta.nvmm_block)
                                } else {
                                    pmfs::tree::lookup(self.dev(), state, iblk)
                                };
                                for (start, nl) in runs(nvmm_mask) {
                                    let (s, e) = clip(start, nl, in_blk, chunk);
                                    match pblk {
                                        Some(p) => self.dev().read(
                                            Cat::UserRead,
                                            Layout::block_off(p) + s as u64,
                                            &mut out[s - in_blk..e - in_blk],
                                        ),
                                        None => {
                                            out[s - in_blk..e - in_blk].fill(0);
                                            self.env.charge_dram_copy(Cat::UserRead, e - s);
                                        }
                                    }
                                }
                            }
                        },
                    );
                }
                None => {
                    drop(sh);
                    match pmfs::tree::lookup(self.dev(), state, iblk) {
                        Some(p) => self.dev().read(
                            Cat::UserRead,
                            Layout::block_off(p) + in_blk as u64,
                            out,
                        ),
                        None => {
                            out.fill(0);
                            self.env.charge_dram_copy(Cat::UserRead, chunk);
                        }
                    }
                }
            }
            done += chunk;
        }
        Ok(n)
    }

    // ----- fsync -----

    /// Flushes the file's dirty buffered blocks, commits its ordered
    /// transactions, and (when `eval_bbm`) runs the Buffer Benefit Model
    /// for the involved blocks. Caller holds the inode write lock.
    pub(crate) fn fsync_core(&self, ino: u64, state: &mut InodeMem, eval_bbm: bool) -> Result<()> {
        let now = self.env.now();
        let mut sh = self.shard(ino).lock();
        // Collect this file's dirty blocks and their flush sizes (N_cf).
        let mut dirty: Vec<(u64, u32, u64)> = Vec::new(); // (iblk, slot, n_cf)
        if let Some(file) = sh.files.get(&ino) {
            file.index.for_each(&mut |iblk, slot| {
                let d = sh.pool().meta(*slot).dirty;
                if d != 0 {
                    dirty.push((iblk, *slot, d.count_ones() as u64));
                }
            });
        }
        for (_, slot, _) in &dirty {
            match self.flush_slot_locked(&mut sh, *slot, Some(state), obsv::DrainKind::Sync)? {
                FlushTry::Done => {}
                FlushTry::NeedsInode(_) => unreachable!("own inode state provided"),
            }
        }
        if eval_bbm {
            // Blocks bypassing the buffer contribute their ghost flushes;
            // every block with activity this epoch gets evaluated.
            let file = sh.file_mut(ino);
            let mut evals: Vec<(u64, u64)> = dirty.iter().map(|&(i, _, n)| (i, n)).collect();
            let flushed: HashSet<u64> = evals.iter().map(|&(i, _)| i).collect();
            for (&iblk, st) in file.bbm.iter() {
                if !flushed.contains(&iblk) && (st.n_cw > 0 || st.ghost_dirty != 0) {
                    evals.push((iblk, st.ghost_dirty.count_ones() as u64));
                }
            }
            // `bbm` is a HashMap: pin the evaluation (and hence eviction)
            // order so repeated runs stay bit-identical.
            evals.sort_unstable();
            let ctx = checker::EvalCtx {
                cfg: &self.cfg,
                cost: self.env.cost(),
                stats: &self.stats,
                trace: &self.obs.trace,
                now,
                ino,
            };
            let mut to_evict: Vec<u64> = Vec::new();
            self.inner.device().spans().scope(
                Phase::GhostProbe,
                || self.env.now(),
                || {
                    for (iblk, n_cf) in evals {
                        let lazy = checker::evaluate_at_sync(&ctx, file, iblk, n_cf);
                        if !lazy && file.index.get(iblk).is_some() {
                            to_evict.push(iblk);
                        }
                    }
                },
            );
            file.last_sync_ns = now;
            state.last_sync = now;
            // Blocks now in the Eager-Persistent state leave the buffer so
            // NVMM stays the single source of truth for them.
            for iblk in to_evict {
                if let Some(slot) = sh.slot_of(ino, iblk) {
                    let _ =
                        self.evict_slot_locked(&mut sh, slot, Some(state), obsv::DrainKind::Sync)?;
                }
            }
        }
        if let Some(file) = sh.files.get_mut(&ino) {
            // Every block of this file is clean now, so no pending entry
            // may gate a commit any longer (entries can go stale when a
            // reclaim flushed a block before its transaction was enqueued).
            for t in &mut file.txs {
                t.pending.clear();
            }
            tracker::drain_ready(
                file,
                self.inner.journal(),
                self.obs.lineage(),
                obsv::DrainKind::Sync,
                now,
                &self.stats,
            );
            debug_assert!(
                file.txs.is_empty(),
                "fsync left open transactions for ino {ino}"
            );
        }
        drop(sh);
        self.dev().sfence();
        self.maybe_audit();
        Ok(())
    }

    /// Discards every buffered block and open transaction of `ino` without
    /// writing anything back — the unlink path ("writes to files that are
    /// later deleted do not need to be performed"). Caller holds the inode
    /// write lock or has otherwise excluded concurrent I/O on the file.
    pub(crate) fn drop_buffers(&self, ino: u64) {
        let mut sh = self.shard(ino).lock();
        if let Some(mut file) = sh.files.remove(&ino) {
            let mut slots = Vec::new();
            file.index.drain(&mut |_, slot| slots.push(slot));
            for slot in slots {
                if sh.pool().meta(slot).dirty != 0 {
                    sh.dirty_blocks -= 1;
                    HinfsStats::bump(&self.stats.dropped_dirty_blocks, 1);
                }
                sh.pool_mut().release_slot(slot);
            }
            // With allocate-on-flush the never-flushed blocks are holes on
            // NVMM, so committing the open transactions exposes zeroes at
            // worst — and the file is being deleted anyway.
            tracker::force_commit_all(
                &mut file,
                self.inner.journal(),
                self.obs.lineage(),
                &self.stats,
            );
        }
    }

    fn truncate_impl(&self, fd: Fd, size: u64) -> Result<()> {
        self.env.charge_syscall();
        let of = self.inner.open_file(fd)?;
        if !of.flags.writable() {
            return Err(FsError::BadFd);
        }
        let mut guard = of.handle.state.write();
        if size == 0 {
            // Truncate-to-zero (log rotation) is a delete of the contents:
            // like unlink, the buffered data need never reach NVMM.
            // drop_buffers force-commits the open transactions (safe: the
            // never-flushed blocks are holes, and the truncate transaction
            // below supersedes the sizes anyway).
            self.drop_buffers(of.ino);
        } else {
            // Quiesce the file's ordered transactions, then drop its
            // buffered state entirely (simple and safe; partial truncate
            // is rare in the evaluated workloads) before resizing the
            // persistent file.
            self.fsync_core(of.ino, &mut guard, false)?;
            self.drop_buffers(of.ino);
        }
        // Extending over the old tail block must expose zeroes even where
        // the flush path left stale bytes past the old EOF.
        let old_size = guard.size;
        if size > old_size && old_size % BLOCK_SIZE as u64 != 0 {
            if let Some(pblk) = pmfs::tree::lookup(self.dev(), &guard, old_size / BLOCK_SIZE as u64)
            {
                let in_blk = (old_size % BLOCK_SIZE as u64) as usize;
                let len = (BLOCK_SIZE - in_blk).min((size - old_size) as usize);
                self.dev().zero_persist(
                    Cat::UserWrite,
                    Layout::block_off(pblk) + in_blk as u64,
                    len,
                );
            }
        }
        let tx = self.begin_tx(of.ino, &mut guard)?;
        let res = (|| -> Result<()> {
            if pmfs::file::truncate(
                self.dev(),
                self.inner.allocator(),
                &mut guard,
                size,
                self.env.now(),
            )? {
                let snap = *guard;
                self.inner.log_write_inode(&tx, of.ino, &snap)?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.inner.journal().commit(tx);
                Ok(())
            }
            Err(e) => {
                self.inner.journal().abort(tx);
                Err(e)
            }
        }
    }

    /// Resolves a path to a file inode handle, if it exists and is a file.
    fn peek_file(&self, path: &str) -> Option<Arc<pmfs::inode::InodeHandle>> {
        let h = self.inner.resolve_path(path).ok()?;
        let is_file = h.state.read().ftype == FileType::File;
        is_file.then_some(h)
    }
}

/// Clips the byte span of a line run to `[in_blk, in_blk+chunk)`; returns
/// block-relative `(start, end)` bytes.
fn clip(start_line: u32, nlines: u32, in_blk: usize, chunk: usize) -> (usize, usize) {
    let s = (start_line as usize * CACHELINE).max(in_blk);
    let e = ((start_line + nlines) as usize * CACHELINE).min(in_blk + chunk);
    (s, e)
}

impl FileSystem for Hinfs {
    fn name(&self) -> &'static str {
        if !self.cfg.checker {
            "hinfs-wb"
        } else if !self.cfg.clfw {
            "hinfs-nclfw"
        } else {
            "hinfs"
        }
    }

    fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.timed(OpKind::Open, || {
            self.relieve_for_namespace();
            // O_TRUNC discards this file's buffered data before PMFS
            // truncates the persistent state.
            if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                if let Some(h) = self.peek_file(path) {
                    let _guard = h.state.write();
                    self.drop_buffers(h.ino);
                }
            }
            self.inner.open(path, flags)
        })
    }

    fn close(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Close, || {
            // The final close of an unlinked file frees it inside PMFS,
            // which needs journal space.
            self.relieve_for_namespace();
            let of = self.inner.open_file(fd)?;
            let orphan_last = of.handle.state.read().nlink == 0 && *of.handle.opens.lock() == 1;
            if orphan_last {
                let _guard = of.handle.state.write();
                self.drop_buffers(of.ino);
            }
            drop(of);
            self.inner.close(fd)
        })
    }

    fn read(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        self.timed(OpKind::Read, || self.read_impl(fd, off, buf))
    }

    fn write(&self, fd: Fd, off: u64, data: &[u8]) -> Result<usize> {
        self.timed(OpKind::Write, || {
            self.write_impl(fd, off, &[data], false).map(|_| data.len())
        })
    }

    fn write_vectored(&self, fd: Fd, off: u64, iovs: &[&[u8]]) -> Result<usize> {
        self.timed(OpKind::Write, || {
            let total = iovs.iter().map(|s| s.len()).sum();
            self.write_impl(fd, off, iovs, false).map(|_| total)
        })
    }

    fn append(&self, fd: Fd, data: &[u8]) -> Result<u64> {
        self.timed(OpKind::Write, || self.write_impl(fd, 0, &[data], true))
    }

    fn fsync(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Fsync, || {
            self.env.charge_syscall();
            let of = self.inner.open_file(fd)?;
            let mut guard = of.handle.state.write();
            self.fsync_core(of.ino, &mut guard, true)
        })
    }

    fn truncate(&self, fd: Fd, size: u64) -> Result<()> {
        self.timed(OpKind::Truncate, || self.truncate_impl(fd, size))
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.timed(OpKind::Unlink, || {
            self.relieve_for_namespace();
            if let Some(h) = self.peek_file(path) {
                let _guard = h.state.write();
                // Only drop the buffered data if the file is really going
                // away; open descriptors keep reading it until the last
                // close.
                if *h.opens.lock() == 0 {
                    self.drop_buffers(h.ino);
                }
            }
            self.inner.unlink(path)
        })
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.relieve_for_namespace();
        self.inner.mkdir(path)
    }

    fn rmdir(&self, path: &str) -> Result<()> {
        self.relieve_for_namespace();
        self.inner.rmdir(path)
    }

    fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        self.inner.readdir(path)
    }

    fn stat(&self, path: &str) -> Result<Stat> {
        self.inner.stat(path)
    }

    fn fstat(&self, fd: Fd) -> Result<Stat> {
        self.inner.fstat(fd)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.relieve_for_namespace();
        // Replacing an existing destination discards its buffered data —
        // but only a rename that actually replaces it may do so: with a
        // missing source the rename fails, and with `from == to` it is a
        // no-op, and in both cases the destination (and its not-yet-
        // written-back DRAM blocks) must survive intact.
        if let Some(h) = self.peek_file(to) {
            let replacing = match self.peek_file(from) {
                Some(src) => src.ino != h.ino,
                None => false,
            };
            if replacing {
                let _guard = h.state.write();
                self.drop_buffers(h.ino);
            }
        }
        self.inner.rename(from, to)
    }

    fn sync(&self) -> Result<()> {
        self.env.charge_syscall();
        self.flush_all()?;
        self.dev().sfence();
        Ok(())
    }

    fn unmount(&self) -> Result<()> {
        // "HiNFS flushes all the DRAM blocks to the NVMM when unmounting."
        self.flush_all()?;
        self.stop_background();
        self.inner.unmount()
    }

    fn mmap(&self, fd: Fd, off: u64, len: usize) -> Result<Arc<dyn MmapHandle>> {
        // Paper §4.2: flush the file's dirty DRAM blocks, pin its blocks to
        // the Eager-Persistent state, then map NVMM directly.
        let of = self.inner.open_file(fd)?;
        {
            let mut guard = of.handle.state.write();
            self.fsync_core(of.ino, &mut guard, false)?;
            let mut sh = self.shard(of.ino).lock();
            // Drop (clean) buffered copies: the mapping must see NVMM.
            let slots: Vec<u32> = match sh.files.get(&of.ino) {
                Some(f) => {
                    let mut v = Vec::new();
                    f.index.for_each(&mut |_, s| v.push(*s));
                    v
                }
                None => Vec::new(),
            };
            for slot in slots {
                let _ =
                    self.evict_slot_locked(&mut sh, slot, Some(&mut guard), obsv::DrainKind::Sync)?;
            }
            sh.file_mut(of.ino).mmap_pinned = true;
        }
        self.inner.mmap(fd, off, len)
    }

    fn tick(&self, now_ns: u64) {
        self.tick_virtual(now_ns);
    }
}

impl obsv::MetricSource for Hinfs {
    fn collect(&self, out: &mut dyn obsv::Visitor) {
        obsv::MetricSource::collect(&self.stats, out);
        obsv::MetricSource::collect(&*self.obs, out);
        // The gauges and the snapshot are the same collection, so the
        // exposition can never disagree with `fs_inspect` output.
        obsv::Introspect::snapshot(self).visit_gauges("hinfs_", out);
    }
}

#[cfg(test)]
mod tests;
