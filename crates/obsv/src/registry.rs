//! The metrics registry: one place every subsystem's counters, gauges and
//! histograms funnel through.
//!
//! Subsystems keep their own cheap atomic counter structs and implement
//! [`MetricSource`]; the registry holds `Arc`s to them and materialises a
//! [`RegistrySnapshot`] on demand. Snapshots support deltas (`since`),
//! Prometheus-style text exposition and a JSON rendering, so one mechanism
//! serves interactive dumps, per-phase workload reports and tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histo::HistoSnapshot;

/// Receives one subsystem's metrics during collection.
pub trait Visitor {
    /// A monotonically increasing counter.
    fn counter(&mut self, name: &str, value: u64);
    /// A point-in-time level (may go down).
    fn gauge(&mut self, name: &str, value: u64);
    /// A sample distribution.
    fn histo(&mut self, name: &str, snap: HistoSnapshot);
}

/// Anything that can report metrics into a [`Visitor`].
pub trait MetricSource: Send + Sync {
    /// Reports every metric this source owns. Must be cheap enough to call
    /// at phase boundaries (no heavy locks, no I/O).
    fn collect(&self, out: &mut dyn Visitor);
}

/// A handle to a registry-owned counter (for code without its own stats
/// struct, e.g. experiment drivers marking phases).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The registry. Cloneable via `Arc`; all methods take `&self`.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn MetricSource>)>>,
    owned: Mutex<Vec<(String, Counter)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("sources", &self.sources.lock().unwrap().len())
            .field("owned", &self.owned.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a source. `scope` is prepended to every metric name the
    /// source reports (use `""` for sources whose names are already
    /// prefixed; a non-empty scope disambiguates multiple instances).
    pub fn register(&self, scope: &str, source: Arc<dyn MetricSource>) {
        self.sources
            .lock()
            .unwrap()
            .push((scope.to_string(), source));
    }

    /// Returns the registry-owned counter named `name`, creating it at
    /// zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut owned = self.owned.lock().unwrap();
        if let Some((_, c)) = owned.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        owned.push((name.to_string(), c.clone()));
        c
    }

    /// Collects every source into a snapshot. Metrics reported under the
    /// same final name are summed (counters, histograms) or last-wins
    /// (gauges).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        for (name, c) in self.owned.lock().unwrap().iter() {
            *snap.counters.entry(name.clone()).or_insert(0) += c.get();
        }
        for (scope, source) in self.sources.lock().unwrap().iter() {
            let mut v = ScopedVisitor {
                scope,
                snap: &mut snap,
            };
            source.collect(&mut v);
        }
        snap
    }
}

struct ScopedVisitor<'a> {
    scope: &'a str,
    snap: &'a mut RegistrySnapshot,
}

impl ScopedVisitor<'_> {
    fn name(&self, name: &str) -> String {
        format!("{}{}", self.scope, name)
    }
}

impl Visitor for ScopedVisitor<'_> {
    fn counter(&mut self, name: &str, value: u64) {
        *self.snap.counters.entry(self.name(name)).or_insert(0) += value;
    }

    fn gauge(&mut self, name: &str, value: u64) {
        self.snap.gauges.insert(self.name(name), value);
    }

    fn histo(&mut self, name: &str, snap: HistoSnapshot) {
        match self.snap.histos.entry(self.name(name)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snap),
        }
    }
}

/// All metrics at one instant, keyed by final (scoped) name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Levels.
    pub gauges: BTreeMap<String, u64>,
    /// Distributions.
    pub histos: BTreeMap<String, HistoSnapshot>,
}

impl RegistrySnapshot {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histos.get(name)
    }

    /// The delta from `earlier` to `self`: counters and histograms are
    /// diffed (a name absent earlier counts from zero), gauges keep their
    /// later value.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histos = self
            .histos
            .iter()
            .map(|(k, v)| {
                let d = match earlier.histos.get(k) {
                    Some(e) => v.since(e),
                    None => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges: self.gauges.clone(),
            histos,
        }
    }

    /// Prometheus text exposition (counters, gauges, and histograms as
    /// summaries with quantile labels).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histos {
            let (p50, p90, p99, p999) = h.percentiles();
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99), ("0.999", p999)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_max {}\n", h.max()));
        }
        out
    }

    /// JSON rendering (stable key order; histograms as percentile
    /// summaries).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"histos\":{");
        push_map(
            &mut out,
            self.histos.iter().map(|(k, h)| {
                let (p50, p90, p99, p999) = h.percentiles();
                (
                    k,
                    format!(
                        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        p50,
                        p90,
                        p99,
                        p999,
                        h.max()
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", escape_json(k), v));
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histo::Histo;

    struct FakeSource {
        hits: AtomicU64,
    }

    impl MetricSource for FakeSource {
        fn collect(&self, out: &mut dyn Visitor) {
            out.counter("hits", self.hits.load(Ordering::Relaxed));
            out.gauge("level", 3);
            let h = Histo::new();
            h.record(10);
            h.record(20);
            out.histo("lat_ns", h.snapshot());
        }
    }

    #[test]
    fn scoped_collection_and_lookup() {
        let reg = MetricsRegistry::new();
        let src = Arc::new(FakeSource {
            hits: AtomicU64::new(5),
        });
        reg.register("fs0_", src.clone());
        reg.register("fs1_", src.clone());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fs0_hits"), 5);
        assert_eq!(snap.counter("fs1_hits"), 5);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("fs0_level"), 3);
        assert_eq!(snap.histo("fs0_lat_ns").unwrap().count(), 2);
    }

    #[test]
    fn same_name_sources_sum() {
        let reg = MetricsRegistry::new();
        let a = Arc::new(FakeSource {
            hits: AtomicU64::new(2),
        });
        let b = Arc::new(FakeSource {
            hits: AtomicU64::new(3),
        });
        reg.register("", a);
        reg.register("", b);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.histo("lat_ns").unwrap().count(), 4);
    }

    #[test]
    fn owned_counters_and_snapshot_monotonicity() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("phases_done");
        let c2 = reg.counter("phases_done");
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3, "same-name handles share the cell");
        let s1 = reg.snapshot();
        c.inc();
        let s2 = reg.snapshot();
        // Every counter is monotone across snapshots...
        for (name, v1) in &s1.counters {
            assert!(s2.counter(name) >= *v1, "{name} went backwards");
        }
        // ...and since() reports exactly the growth.
        let d = s2.since(&s1);
        assert_eq!(d.counter("phases_done"), 1);
    }

    #[test]
    fn since_diffs_histograms_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let src = Arc::new(FakeSource {
            hits: AtomicU64::new(1),
        });
        reg.register("", src.clone());
        let s1 = reg.snapshot();
        src.hits.store(11, Ordering::Relaxed);
        let s2 = reg.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.counter("hits"), 10);
        assert_eq!(d.gauge("level"), 3, "gauges carry the later value");
        assert_eq!(d.histo("lat_ns").unwrap().count(), 0, "histo unchanged");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.register(
            "",
            Arc::new(FakeSource {
                hits: AtomicU64::new(7),
            }),
        );
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hits counter\nhits 7\n"), "{text}");
        assert!(text.contains("# TYPE level gauge\nlevel 3\n"), "{text}");
        assert!(text.contains("# TYPE lat_ns summary\n"), "{text}");
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("lat_ns_count 2\n"), "{text}");
        assert!(text.contains("lat_ns_max 20\n"), "{text}");
    }

    #[test]
    fn json_is_wellformed_enough() {
        let reg = MetricsRegistry::new();
        reg.register(
            "",
            Arc::new(FakeSource {
                hits: AtomicU64::new(1),
            }),
        );
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"hits\":1"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
