//! Block-based baseline file systems for the NVMMBD comparison.
//!
//! The paper evaluates HiNFS against traditional file systems running on a
//! RAMDISK-like NVMM block device (Fig 3(a)) and against EXT4-DAX. This
//! crate provides all three as one [`Extfs`] type with an [`ExtMode`]:
//!
//! - [`ExtMode::Ext2`] — no journal; metadata and data through the OS page
//!   cache (modeled by [`cache::BufferCache`]) and the generic block layer.
//!   Every file I/O takes two copies: device ↔ page cache ↔ user buffer.
//! - [`ExtMode::Ext4`] — adds a jbd2-style physical redo journal in
//!   ordered-data mode: data pages are flushed before the journal commit.
//! - [`ExtMode::Ext4Dax`] — the DAX patch: file data bypasses the page
//!   cache and the block layer (single copy straight to the NVMM bytes),
//!   while metadata keeps the cache-oriented ext4 path — exactly the split
//!   the paper blames for DAX's weak metadata performance (Varmail).
//!
//! The on-media format is an ext2-like layout: superblock, block/inode
//! bitmaps, inode table, and per-inode 12+1+1 (direct / indirect /
//! double-indirect) block pointers.

pub mod alloc;
pub mod blkmap;
pub mod cache;
pub mod dir;
pub mod fs;
pub mod inode;
pub mod jbd;
pub mod layout;

pub use fs::{ExtOptions, Extfs};

/// Which baseline personality an [`Extfs`] instance runs as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtMode {
    /// Traditional file system without journaling (EXT2+NVMMBD).
    Ext2,
    /// Traditional journaling file system, ordered data mode (EXT4+NVMMBD).
    Ext4,
    /// DAX: direct data access, cache-oriented metadata (EXT4-DAX).
    Ext4Dax,
}

impl ExtMode {
    /// Whether metadata changes are journaled.
    pub fn journaled(self) -> bool {
        !matches!(self, ExtMode::Ext2)
    }

    /// Whether file data bypasses the page cache.
    pub fn dax_data(self) -> bool {
        matches!(self, ExtMode::Ext4Dax)
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            ExtMode::Ext2 => "ext2-nvmmbd",
            ExtMode::Ext4 => "ext4-nvmmbd",
            ExtMode::Ext4Dax => "ext4-dax",
        }
    }
}
