//! Block allocator.
//!
//! Like PMFS, the allocator's bitmap lives in DRAM and is only *persisted*
//! on clean unmount (into the layout's bitmap region). After a crash the
//! bitmap is rebuilt at mount by walking the inode table and every file's
//! block tree, so block allocation never needs journaling — an allocated
//! but unreachable block simply returns to the free pool on recovery.
//!
//! Since PR 7 the data area is split into [`NSHARDS`] contiguous segments,
//! each guarded by its own lock (in the style of llfree-rs per-CPU trees):
//! `alloc` round-robins a preferred shard and *steals* from the next shard
//! in index order when the preferred one is empty, so concurrent writers
//! rarely collide on one lock while exhaustion still drains every segment.
//! `free`/`mark_used` route by block number to the owning segment. The
//! persisted image is still one global bitmap, bit-compatible with the
//! pre-sharding format.

use std::sync::atomic::{AtomicUsize, Ordering};

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};
use obsv::{Site, TrackedMutex, NSHARDS};

use crate::layout::Layout;

#[derive(Debug)]
struct Shard {
    /// One bit per block of this shard's segment; set = in use.
    bitmap: Vec<u64>,
    free: u64,
    /// Next absolute block to try (min-reset on free).
    hint: u64,
    /// Absolute segment bounds `[start, end)`.
    start: u64,
    end: u64,
}

impl Shard {
    fn new_segment(start: u64, end: u64) -> Shard {
        let nblocks = (end - start) as usize;
        Shard {
            bitmap: vec![0u64; nblocks.div_ceil(64)],
            free: end - start,
            hint: start,
            start,
            end,
        }
    }

    fn get(&self, b: u64) -> bool {
        let i = (b - self.start) as usize;
        self.bitmap[i / 64] & (1 << (i % 64)) != 0
    }

    fn set(&mut self, b: u64) {
        let i = (b - self.start) as usize;
        self.bitmap[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, b: u64) {
        let i = (b - self.start) as usize;
        self.bitmap[i / 64] &= !(1 << (i % 64));
    }

    /// Allocates one block from this segment, or `None` when empty.
    fn alloc_one(&mut self) -> Option<u64> {
        if self.free == 0 {
            return None;
        }
        let start = self.hint.clamp(self.start, self.end - 1);
        let mut b = start;
        loop {
            if !self.get(b) {
                self.set(b);
                self.free -= 1;
                self.hint = if b + 1 < self.end { b + 1 } else { self.start };
                return Some(b);
            }
            b += 1;
            if b >= self.end {
                b = self.start;
            }
            if b == start {
                // `free` said there was space; the bitmap disagrees.
                return None;
            }
        }
    }
}

/// DRAM-resident block allocator over the data area, sharded into
/// [`NSHARDS`] independently locked segments.
#[derive(Debug)]
pub struct Allocator {
    shards: Vec<TrackedMutex<Shard>>,
    /// Round-robin cursor picking the preferred shard of the next `alloc`.
    next: AtomicUsize,
    data_start: u64,
    total_blocks: u64,
    /// Device whose fault-injection hook is consulted on `alloc` (attached
    /// at mount; absent in unit tests that build the allocator bare).
    fault_dev: std::sync::OnceLock<std::sync::Arc<NvmmDevice>>,
}

/// Absolute bounds `[start, end)` of shard `i` over the data area.
fn segment(layout_data_start: u64, total_blocks: u64, i: usize) -> (u64, u64) {
    let data_blocks = total_blocks - layout_data_start;
    let per = data_blocks.div_ceil(NSHARDS as u64);
    let start = layout_data_start + per * i as u64;
    let end = (start + per).min(total_blocks);
    (start.min(total_blocks), end)
}

impl Allocator {
    /// Creates an allocator with every data block free. Metadata blocks
    /// (superblock, journal, inode table, bitmap image) sit below
    /// `data_start`, outside every shard, and are implicitly in use.
    pub fn new_empty(layout: &Layout) -> Allocator {
        Allocator::from_bits(layout.data_start, layout.total_blocks, |_| false)
    }

    /// Builds the shard array, marking block `b` used when `used(b)`.
    fn from_bits(data_start: u64, total_blocks: u64, used: impl Fn(u64) -> bool) -> Allocator {
        let shards = (0..NSHARDS)
            .map(|i| {
                let (start, end) = segment(data_start, total_blocks, i);
                let mut s = Shard::new_segment(start, end);
                for b in start..end {
                    if used(b) {
                        s.set(b);
                        s.free -= 1;
                    }
                }
                TrackedMutex::new(Site::pmfs_alloc_shard(i), s)
            })
            .collect();
        Allocator {
            shards,
            next: AtomicUsize::new(0),
            data_start,
            total_blocks,
            fault_dev: std::sync::OnceLock::new(),
        }
    }

    /// Attaches the device whose fault-injection plan `alloc` consults
    /// (ENOSPC injection), and wires every shard lock to the device's
    /// contention profiler. Later calls are ignored.
    pub fn attach_fault_device(&self, dev: std::sync::Arc<NvmmDevice>) {
        for shard in &self.shards {
            shard.attach(dev.contention());
        }
        let _ = self.fault_dev.set(dev);
    }

    /// Index of the shard owning block `blk`.
    fn shard_of(&self, blk: u64) -> usize {
        debug_assert!(blk >= self.data_start && blk < self.total_blocks);
        let per = (self.total_blocks - self.data_start).div_ceil(NSHARDS as u64);
        (((blk - self.data_start) / per) as usize).min(NSHARDS - 1)
    }

    /// Allocates one block, returning its absolute block number.
    ///
    /// Round-robins a preferred shard, then steals from the following
    /// shards in index order when the preferred segment is empty.
    pub fn alloc(&self) -> Result<u64> {
        if let Some(dev) = self.fault_dev.get() {
            if nvmm::fault::alloc_blocked(dev) {
                return Err(FsError::NoSpace);
            }
        }
        let preferred = self.next.fetch_add(1, Ordering::Relaxed) % NSHARDS;
        for k in 0..NSHARDS {
            let idx = (preferred + k) % NSHARDS;
            let mut shard = self.shards[idx].lock();
            if let Some(b) = shard.alloc_one() {
                return Ok(b);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Returns a block to the free pool of its owning shard.
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently allocated or is a metadata
    /// block (double free / corruption bugs should fail loudly in tests).
    pub fn free(&self, blk: u64) {
        assert!(
            blk >= self.data_start && blk < self.total_blocks,
            "freeing non-data block {blk}"
        );
        let mut shard = self.shards[self.shard_of(blk)].lock();
        assert!(shard.get(blk), "double free of block {blk}");
        shard.clear(blk);
        shard.free += 1;
        shard.hint = shard.hint.min(blk);
    }

    /// Marks a block as in use during the recovery walk. Metadata blocks
    /// (below the data area) are always in use and are ignored.
    pub fn mark_used(&self, blk: u64) {
        assert!(blk < self.total_blocks, "mark_used out of range: {blk}");
        if blk < self.data_start {
            return;
        }
        let mut shard = self.shards[self.shard_of(blk)].lock();
        if !shard.get(blk) {
            shard.set(blk);
            shard.free -= 1;
        }
    }

    /// Number of free data blocks across all shards.
    pub fn free_blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().free).sum()
    }

    /// Free data blocks per shard, in shard order (diagnostics).
    pub fn free_blocks_by_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().free).collect()
    }

    /// Persists the bitmap image into the layout's bitmap region (clean
    /// unmount). The image is one global bitmap — bit-compatible with the
    /// pre-sharding on-device format.
    pub fn persist(&self, dev: &NvmmDevice, layout: &Layout) {
        let words = (self.total_blocks as usize).div_ceil(64);
        let mut bitmap = vec![0u64; words];
        let mut set = |b: u64| bitmap[(b / 64) as usize] |= 1 << (b % 64);
        for b in 0..self.data_start {
            set(b);
        }
        for shard in &self.shards {
            let shard = shard.lock();
            for b in shard.start..shard.end {
                if shard.get(b) {
                    set(b);
                }
            }
        }
        let mut bytes: Vec<u8> = Vec::with_capacity(words * 8);
        for w in &bitmap {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.resize(layout.bitmap_blocks as usize * BLOCK_SIZE, 0);
        dev.write_persist(Cat::Meta, Layout::block_off(layout.bitmap_start), &bytes);
        dev.sfence();
    }

    /// Loads the persisted bitmap image (mount after clean unmount),
    /// partitioning it back into shard segments.
    pub fn load(dev: &NvmmDevice, layout: &Layout) -> Allocator {
        let words = (layout.total_blocks as usize).div_ceil(64);
        let mut bytes = vec![0u8; words * 8];
        dev.read(
            Cat::Meta,
            Layout::block_off(layout.bitmap_start),
            &mut bytes,
        );
        let bitmap: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Allocator::from_bits(layout.data_start, layout.total_blocks, |b| {
            bitmap[(b / 64) as usize] & (1 << (b % 64)) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    fn setup() -> (Arc<NvmmDevice>, Layout) {
        let dev = NvmmDevice::new(SimEnv::new_virtual(CostModel::default()), 1024 * BLOCK_SIZE);
        let layout = Layout::compute(1024, 16, 256).unwrap();
        (dev, layout)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let initial = a.free_blocks();
        assert_eq!(initial, layout.data_blocks());
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert!(b1 >= layout.data_start);
        assert_ne!(b1, b2);
        assert_eq!(a.free_blocks(), initial - 2);
        a.free(b1);
        assert_eq!(a.free_blocks(), initial - 1);
        // The freed block becomes allocatable again once the round-robin
        // cursor comes back to its shard.
        let mut seen = Vec::new();
        for _ in 0..NSHARDS {
            seen.push(a.alloc().unwrap());
        }
        assert!(seen.contains(&b1), "freed block not reallocated: {seen:?}");
    }

    #[test]
    fn round_robin_spreads_across_segments() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let picks: Vec<u64> = (0..NSHARDS).map(|_| a.alloc().unwrap()).collect();
        let shards: std::collections::HashSet<usize> =
            picks.iter().map(|&b| a.shard_of(b)).collect();
        assert_eq!(shards.len(), NSHARDS, "picks should hit every shard");
    }

    #[test]
    fn exhaustion_steals_then_returns_nospace() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..layout.data_blocks() {
            // Every allocation must be unique: the tail of the run drains
            // non-preferred shards through the steal path.
            assert!(seen.insert(a.alloc().unwrap()), "duplicate block");
        }
        assert_eq!(a.alloc(), Err(FsError::NoSpace));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let b = a.alloc().unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    #[should_panic(expected = "non-data block")]
    fn freeing_metadata_block_panics() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        a.free(0);
    }

    #[test]
    fn persist_load_roundtrip() {
        let (dev, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let b1 = a.alloc().unwrap();
        let _b2 = a.alloc().unwrap();
        let b3 = a.alloc().unwrap();
        a.free(b3);
        a.persist(&dev, &layout);
        let loaded = Allocator::load(&dev, &layout);
        assert_eq!(loaded.free_blocks(), a.free_blocks());
        // b1 still allocated in the loaded map: freeing works, re-freeing
        // would panic (checked indirectly by alloc not returning b1 first).
        loaded.free(b1);
        assert_eq!(loaded.free_blocks(), a.free_blocks() + 1);
    }

    #[test]
    fn mark_used_is_idempotent() {
        let (_, layout) = setup();
        let a = Allocator::new_empty(&layout);
        let before = a.free_blocks();
        a.mark_used(layout.data_start + 5);
        a.mark_used(layout.data_start + 5);
        assert_eq!(a.free_blocks(), before - 1);
    }
}
