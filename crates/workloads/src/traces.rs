//! Synthetic system-call traces standing in for the FIU Usr0/Usr1, LASR,
//! and MobiBench-Facebook traces of Table 1 (the originals are not
//! redistributable). Each generator reproduces the characteristics the
//! figures depend on:
//!
//! | Trace | Character reproduced |
//! |---|---|
//! | Usr0 | research desktop: mixed read/write, zipf-like write locality, a moderate share of fsync'd bytes |
//! | Usr1 | like Usr0 at another time: lower sync share, more reads |
//! | LASR | software-development machines: small I/O, **zero** fsync (Fig 2) |
//! | Facebook | MobiBench: SQLite-style sub-KB writes, fsync after almost every write, "sync operations too frequent to coalesce" |
//!
//! The replay extracts the paper's four op types — read, write, unlink,
//! fsync (§5.3) — so each step issues exactly one of those (plus the
//! opens/closes file churn requires).

use std::sync::Arc;

use fskit::{Fd, OpenFlags, Result};
use rand::Rng;

use crate::fileset::Fileset;
use crate::runner::{Actor, Ctx};

/// Mix of a synthetic trace, as per-mille probabilities.
#[derive(Debug, Clone, Copy)]
pub struct TraceProfile {
    /// Trace name (report label).
    pub name: &'static str,
    /// Probability of a read op, ‰.
    pub read_pm: u32,
    /// Probability of a write op, ‰.
    pub write_pm: u32,
    /// Probability of an unlink(+recreate later) op, ‰.
    pub unlink_pm: u32,
    /// Probability that a write is followed by fsync, ‰.
    pub sync_after_write_pm: u32,
    /// Mean I/O size in bytes.
    pub mean_io: usize,
    /// Number of hot files that absorb most writes (locality).
    pub hot_files: usize,
    /// Probability a write goes to a hot file, ‰.
    pub hot_pm: u32,
    /// How many of the hot files are sync-prone (fsync only ever targets
    /// these; the rest are never synchronized, which keeps the trace's
    /// fsync-byte share partial like the FIU desktops in Fig 2).
    pub synced_hot_files: usize,
}

/// FIU Usr0: research desktop, moderate sync share.
pub const USR0: TraceProfile = TraceProfile {
    name: "usr0",
    read_pm: 350,
    write_pm: 600,
    unlink_pm: 50,
    sync_after_write_pm: 300,
    mean_io: 16 << 10,
    hot_files: 8,
    hot_pm: 700,
    synced_hot_files: 4,
};

/// FIU Usr1: same desktop, different period — fewer syncs, more reads.
pub const USR1: TraceProfile = TraceProfile {
    name: "usr1",
    read_pm: 450,
    write_pm: 500,
    unlink_pm: 50,
    sync_after_write_pm: 150,
    mean_io: 12 << 10,
    hot_files: 8,
    hot_pm: 700,
    synced_hot_files: 2,
};

/// LASR: CS-research development machines — no fsync at all (Fig 2).
pub const LASR: TraceProfile = TraceProfile {
    name: "lasr",
    read_pm: 500,
    write_pm: 450,
    unlink_pm: 50,
    sync_after_write_pm: 0,
    mean_io: 4 << 10,
    hot_files: 16,
    hot_pm: 600,
    synced_hot_files: 0,
};

/// MobiBench Facebook: sub-KB writes, fsync after nearly every write.
pub const FACEBOOK: TraceProfile = TraceProfile {
    name: "facebook",
    read_pm: 250,
    write_pm: 700,
    unlink_pm: 50,
    sync_after_write_pm: 950,
    mean_io: 600,
    hot_files: 4,
    hot_pm: 900,
    synced_hot_files: 4,
};

/// All four trace profiles in paper order.
pub const ALL_TRACES: [TraceProfile; 4] = [USR0, USR1, LASR, FACEBOOK];

/// A trace-replay actor.
pub struct TraceReplay {
    profile: TraceProfile,
    set: Arc<Fileset>,
    /// Open descriptors for the hot files.
    hot: Vec<(String, Option<Fd>)>,
    buf: Vec<u8>,
}

impl TraceReplay {
    /// Creates a replay worker. Hot files come from the populated set.
    pub fn new(set: Arc<Fileset>, profile: TraceProfile, seed: u64) -> TraceReplay {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let hot = (0..profile.hot_files)
            .filter_map(|_| set.pick(&mut rng))
            .map(|p| (p, None))
            .collect();
        TraceReplay {
            profile,
            set,
            hot,
            buf: Vec::new(),
        }
    }

    fn io_size(&self, ctx: &mut Ctx<'_>) -> usize {
        crate::fileset::draw_size(&mut ctx.rng, self.profile.mean_io).max(1)
    }

    fn hot_fd(&mut self, ctx: &mut Ctx<'_>) -> Result<Option<(usize, Fd)>> {
        if self.hot.is_empty() {
            return Ok(None);
        }
        let i = ctx.rng.gen_range(0..self.hot.len());
        if self.hot[i].1.is_none() {
            let path = self.hot[i].0.clone();
            match ctx.open(&path, OpenFlags::RDWR) {
                Ok(fd) => self.hot[i].1 = Some(fd),
                Err(_) => {
                    // Hot file disappeared (unlinked): recreate it.
                    let fd = ctx.open(&path, OpenFlags::RDWR | OpenFlags::CREATE)?;
                    self.hot[i].1 = Some(fd);
                }
            }
        }
        Ok(self.hot[i].1.map(|fd| (i, fd)))
    }
}

impl Actor for TraceReplay {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        let p = self.profile;
        let dice = ctx.rng.gen_range(0..1000u32);
        if dice < p.read_pm {
            // Read: a hot file or a random file.
            let n = self.io_size(ctx);
            self.buf.resize(n, 0);
            if ctx.rng.gen_range(0..1000) < p.hot_pm {
                if let Some((_, fd)) = self.hot_fd(ctx)? {
                    let size = ctx.fstat(fd)?.size;
                    let off = if size > n as u64 {
                        ctx.rng.gen_range(0..=size - n as u64)
                    } else {
                        0
                    };
                    ctx.read(fd, off, &mut self.buf.clone())?;
                }
            } else if let Some(path) = self.set.pick(&mut ctx.rng) {
                if let Ok(fd) = ctx.open(&path, OpenFlags::READ) {
                    ctx.read(fd, 0, &mut self.buf.clone())?;
                    ctx.close(fd)?;
                }
            }
        } else if dice < p.read_pm + p.write_pm {
            // Write, with locality, maybe followed by fsync.
            let n = self.io_size(ctx);
            self.buf.resize(n, 0x99);
            let hot = ctx.rng.gen_range(0..1000) < p.hot_pm;
            if hot {
                if let Some((i, fd)) = self.hot_fd(ctx)? {
                    if i < p.synced_hot_files {
                        // Sync-prone hot files behave like database files:
                        // writes scattered over a fixed working set, so
                        // the same blocks are *re*written across sync
                        // epochs but rarely coalesce *within* one — the
                        // writes the Buffer Benefit Model must route
                        // eagerly.
                        let span: u64 = 256 << 10;
                        let off = ctx.rng.gen_range(0..span - self.buf.len() as u64);
                        ctx.write(fd, off, &self.buf)?;
                        if ctx.rng.gen_range(0..1000) < p.sync_after_write_pm {
                            ctx.fsync(fd)?;
                        }
                    } else {
                        // Unsynced hot files are overwritten in place:
                        // heavy coalescing in the write buffer.
                        let size = ctx.fstat(fd)?.size.max(1);
                        let span = size.min(256 << 10);
                        let off = ctx.rng.gen_range(0..span);
                        ctx.write(fd, off, &self.buf)?;
                    }
                }
            } else if let Some(path) = self.set.pick(&mut ctx.rng) {
                if let Ok(fd) = ctx.open(&path, OpenFlags::RDWR) {
                    ctx.append(fd, &self.buf)?;
                    if ctx.rng.gen_range(0..1000) < p.sync_after_write_pm {
                        ctx.fsync(fd)?;
                    }
                    ctx.close(fd)?;
                }
            }
        } else if dice < p.read_pm + p.write_pm + p.unlink_pm {
            // Unlink a cold file and recreate a fresh one to keep the
            // population stable.
            if self.set.len() > p.hot_files + 2 {
                if let Some(path) = self.set.take(&mut ctx.rng) {
                    if self.hot.iter().any(|(h, _)| *h == path) {
                        // Do not delete hot files; put it back via fresh.
                        let _ = path;
                    } else {
                        let _ = ctx.unlink(&path);
                        let fresh = self.set.fresh(&mut ctx.rng);
                        let fd = ctx.open(&fresh, OpenFlags::RDWR | OpenFlags::CREATE)?;
                        ctx.close(fd)?;
                    }
                }
            }
        } else {
            // Metadata noise: stat something.
            if let Some(path) = self.set.pick(&mut ctx.rng) {
                let _ = ctx.stat(&path);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileset::FilesetSpec;
    use crate::runner::{RunLimit, Runner};
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    fn run_trace(profile: TraceProfile) -> crate::RunReport {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 65536 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 256,
                inode_count: 4096,
            },
        )
        .unwrap();
        let set = Fileset::populate(&*fs, FilesetSpec::new("/home", 80, 16, 32 << 10), 7).unwrap();
        env.rebase();
        let runner = Runner::new(env, fs);
        let replay = TraceReplay::new(set, profile, 23);
        runner.run(vec![Box::new(replay)], RunLimit::steps(400), 31)
    }

    #[test]
    fn lasr_never_syncs() {
        let r = run_trace(LASR);
        assert_eq!(r.op_count(crate::OpKind::Fsync), 0);
        assert_eq!(r.fsync_byte_fraction(), 0.0);
        assert!(r.metrics.bytes_read > 0 && r.metrics.bytes_written > 0);
    }

    #[test]
    fn facebook_syncs_almost_everything() {
        let r = run_trace(FACEBOOK);
        assert!(
            r.fsync_byte_fraction() > 0.8,
            "facebook sync fraction {:.2}",
            r.fsync_byte_fraction()
        );
        // Sub-KB mean write size.
        let mean = r.metrics.bytes_written / r.op_count(crate::OpKind::Write).max(1);
        assert!(mean < 1024, "facebook mean write {mean} B");
    }

    #[test]
    fn usr_profiles_sit_between() {
        let r0 = run_trace(USR0);
        let f0 = r0.fsync_byte_fraction();
        assert!(f0 > 0.1 && f0 < 0.7, "usr0 fraction {f0:.2}");
        let r1 = run_trace(USR1);
        let f1 = r1.fsync_byte_fraction();
        assert!(f1 < f0, "usr1 syncs less than usr0 ({f1:.2} vs {f0:.2})");
        assert!(r0.op_count(crate::OpKind::Unlink) > 0);
    }
}
