//! Nestable, allocation-free phase timers attributing time to an
//! [`OpKind`] × [`Phase`] matrix.
//!
//! A [`SpanTable`] answers the question the whole-op histograms cannot:
//! *where inside* a `write` did the time go — DRAM copy, NVMM persist,
//! fence, journal logging, buffer lookup? This is the instrument behind
//! the paper's Fig 1 ("NVMM read/write access vs Others") and Fig 12
//! (per-op time breakdown) tables, recomputed from live measurements
//! instead of the analytic ledger.
//!
//! Design rules, matching the rest of `obsv`:
//!
//! - **Off by default, one relaxed load when off.** [`SpanTable::scope`]
//!   and [`SpanTable::op_scope`] check a relaxed `AtomicBool` and run the
//!   body untouched when disabled; the clock closure is never invoked.
//! - **Allocation-free when on.** Nesting state lives in a fixed-depth
//!   thread-local stack of `(start, child)` frames; totals are relaxed
//!   `AtomicU64` cells.
//! - **Exclusive-time accounting.** A nested scope's elapsed time is
//!   subtracted from its parent, so every simulated nanosecond inside an
//!   `op_scope` lands in exactly one phase cell and the row sums to the
//!   op's total elapsed time. The op wrapper itself books its remainder
//!   (time in no named phase) under [`Phase::Other`].
//! - **Row attribution via a thread-local current-op.** [`SpanTable::op_scope`]
//!   sets the row for everything beneath it — including device-level
//!   hooks that know their phase (persist, fence) but not which syscall
//!   they serve. Work outside any op (the writeback thread) lands in a
//!   dedicated background row ([`BG_ROW`], label `bg`).

use crate::{MetricSource, OpKind, Visitor, ALL_OPS, NOPS};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Execution phase a span attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// DRAM buffer-cache lookup / page-cache indexing on the write path.
    BufLookup = 0,
    /// Copying between user buffers and DRAM (buffer slots, page cache).
    DramCopy = 1,
    /// Copying from NVMM into DRAM (reads, CLFW fetches, writeback reads).
    NvmmCopy = 2,
    /// Stitching a read from interleaved DRAM and NVMM cachelines.
    CachelineStitch = 3,
    /// Persistent stores to NVMM (data writes, flushes) and their
    /// bandwidth-gate admission.
    Persist = 4,
    /// Store fences (`sfence`) ordering persistent writes.
    Fence = 5,
    /// Journal work: undo logging, commit records, recovery scans.
    Journal = 6,
    /// Block / inode allocator work.
    Alloc = 7,
    /// Metadata indexing: inode table and directory persistence.
    Index = 8,
    /// Buffer Benefit Model evaluation (ghost-probe bookkeeping at fsync).
    GhostProbe = 9,
    /// Instrumented op time in no named phase (syscall overhead,
    /// software-only bookkeeping).
    Other = 10,
}

/// Number of [`Phase`] variants.
pub const NPHASES: usize = 11;

/// All phases in discriminant order.
pub const ALL_PHASES: [Phase; NPHASES] = [
    Phase::BufLookup,
    Phase::DramCopy,
    Phase::NvmmCopy,
    Phase::CachelineStitch,
    Phase::Persist,
    Phase::Fence,
    Phase::Journal,
    Phase::Alloc,
    Phase::Index,
    Phase::GhostProbe,
    Phase::Other,
];

impl Phase {
    /// Stable label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BufLookup => "buf_lookup",
            Phase::DramCopy => "dram_copy",
            Phase::NvmmCopy => "nvmm_copy",
            Phase::CachelineStitch => "cacheline_stitch",
            Phase::Persist => "persist",
            Phase::Fence => "fence",
            Phase::Journal => "journal",
            Phase::Alloc => "alloc",
            Phase::Index => "index",
            Phase::GhostProbe => "ghost_probe",
            Phase::Other => "other",
        }
    }
}

/// Rows in the span matrix: one per [`OpKind`] plus the background row.
pub const SPAN_ROWS: usize = NOPS + 1;

/// Row index for work attributed to no operation (writeback thread,
/// mount-time recovery).
pub const BG_ROW: usize = NOPS;

/// Stable label of a span-matrix row.
pub fn row_label(row: usize) -> &'static str {
    if row == BG_ROW {
        "bg"
    } else {
        ALL_OPS[row].label()
    }
}

/// Deepest scope nesting tracked per thread. Deeper scopes still run
/// their bodies; they just go unmeasured (ops → device → journal →
/// device is 4–6 deep in practice).
const MAX_DEPTH: usize = 32;

#[derive(Clone, Copy)]
struct Frame {
    start: u64,
    child: u64,
}

struct TlsState {
    frames: [Frame; MAX_DEPTH],
    depth: usize,
    row: usize,
    /// Frames at indices below `base` belong to a detached ancestor
    /// context; pops stop folding child time at this boundary.
    base: usize,
}

thread_local! {
    static TLS: RefCell<TlsState> = const {
        RefCell::new(TlsState {
            frames: [Frame { start: 0, child: 0 }; MAX_DEPTH],
            depth: 0,
            row: BG_ROW,
            base: 0,
        })
    };
}

#[derive(Debug, Default)]
struct SpanCell {
    ns: AtomicU64,
    calls: AtomicU64,
}

/// Accumulated per-op × per-phase exclusive time, in simulated ns.
///
/// One table exists per simulated NVMM device; every file system mounted
/// on that device charges into it. Disabled by default.
#[derive(Debug)]
pub struct SpanTable {
    enabled: AtomicBool,
    cells: [[SpanCell; NPHASES]; SPAN_ROWS],
}

impl Default for SpanTable {
    fn default() -> Self {
        SpanTable::new()
    }
}

impl SpanTable {
    /// A disabled, zeroed table.
    pub fn new() -> SpanTable {
        SpanTable {
            enabled: AtomicBool::new(false),
            cells: std::array::from_fn(|_| std::array::from_fn(|_| SpanCell::default())),
        }
    }

    /// Switches span accumulation. Leaves accumulated totals in place.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being accumulated — one relaxed load, the whole
    /// cost of every hook while disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Runs `f` inside a phase span. When enabled, the elapsed `clock`
    /// time minus any nested spans is charged to `(current op, phase)`;
    /// when disabled this is a single relaxed load and `clock` is never
    /// called.
    #[inline]
    pub fn scope<R>(&self, phase: Phase, clock: impl Fn() -> u64, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let pushed = push_frame(clock());
        let _g = ScopeGuard {
            table: self,
            phase,
            clock: &clock,
            pushed,
        };
        f()
    }

    /// Runs `f` attributed to `op`: nested [`SpanTable::scope`] calls
    /// charge `op`'s row, and the op's own remainder (time in no named
    /// phase) is booked under [`Phase::Other`]. Nesting is fine — an
    /// inner `op_scope` (HiNFS delegating a syscall to PMFS) books its
    /// remainder against the same row without double counting.
    #[inline]
    pub fn op_scope<R>(&self, op: OpKind, clock: impl Fn() -> u64, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let (pushed, prev_row) = push_op_frame(clock(), op as usize);
        let _g = OpGuard {
            table: self,
            row: op as usize,
            prev_row,
            clock: &clock,
            pushed,
        };
        f()
    }

    /// Runs `f` with span attribution detached from the caller's op
    /// context: nested scopes book into the background row, and their
    /// elapsed time does not fold into the caller's open frames. For
    /// background work executed inline on a foreground thread under a
    /// detached clock (HiNFS's virtual-mode writeback actor runs on its
    /// own timeline via `SimEnv::with_now`, so its time must not inflate
    /// the op that happened to trigger it).
    #[inline]
    pub fn detached<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let (prev_row, prev_base) = TLS.with(|t| {
            let mut t = t.borrow_mut();
            let saved = (t.row, t.base);
            t.row = BG_ROW;
            t.base = t.depth;
            saved
        });
        let _g = DetachGuard {
            prev_row,
            prev_base,
        };
        f()
    }

    /// Point-in-time copy of the matrix.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            ns: std::array::from_fn(|r| {
                std::array::from_fn(|p| self.cells[r][p].ns.load(Ordering::Relaxed))
            }),
            calls: std::array::from_fn(|r| {
                std::array::from_fn(|p| self.cells[r][p].calls.load(Ordering::Relaxed))
            }),
        }
    }

    fn charge(&self, row: usize, phase: Phase, excl_ns: u64) {
        let cell = &self.cells[row][phase as usize];
        cell.ns.fetch_add(excl_ns, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);
        crate::flight::note_phase(row, phase, excl_ns);
    }
}

/// The calling thread's current span-matrix row: the op set by the
/// innermost enclosing [`SpanTable::op_scope`], or [`BG_ROW`] outside
/// any op (or while spans are disabled — `op_scope` only switches the
/// row when enabled). The contention layer reads this to attribute
/// waits and holds to the op being served.
pub(crate) fn current_row() -> usize {
    TLS.with(|t| t.borrow().row)
}

/// Pushes a timing frame; returns whether it fit in the fixed stack.
fn push_frame(start: u64) -> bool {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.depth == MAX_DEPTH {
            return false;
        }
        let d = t.depth;
        t.frames[d] = Frame { start, child: 0 };
        t.depth = d + 1;
        true
    })
}

/// Pushes a frame and switches the current row; returns `(pushed, prev_row)`.
/// The row switches even when the frame does not fit, so attribution
/// survives stack overflow (only the `Other` remainder is lost).
fn push_op_frame(start: u64, row: usize) -> (bool, usize) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let prev = t.row;
        t.row = row;
        if t.depth == MAX_DEPTH {
            return (false, prev);
        }
        let d = t.depth;
        t.frames[d] = Frame { start, child: 0 };
        t.depth = d + 1;
        (true, prev)
    })
}

/// Pops the top frame, returning `(row, elapsed, exclusive)` and folding
/// `elapsed` into the parent frame's child time.
fn pop_frame(end: u64) -> (usize, u64, u64) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        debug_assert!(t.depth > 0, "span frame stack underflow");
        t.depth -= 1;
        let d = t.depth;
        let f = t.frames[d];
        let elapsed = end.saturating_sub(f.start);
        let excl = elapsed.saturating_sub(f.child);
        if d > t.base {
            t.frames[d - 1].child = t.frames[d - 1].child.saturating_add(elapsed);
        }
        (t.row, elapsed, excl)
    })
}

struct ScopeGuard<'a, C: Fn() -> u64> {
    table: &'a SpanTable,
    phase: Phase,
    clock: &'a C,
    pushed: bool,
}

impl<C: Fn() -> u64> Drop for ScopeGuard<'_, C> {
    fn drop(&mut self) {
        if self.pushed {
            let (row, _elapsed, excl) = pop_frame((self.clock)());
            self.table.charge(row, self.phase, excl);
        }
    }
}

struct DetachGuard {
    prev_row: usize,
    prev_base: usize,
}

impl Drop for DetachGuard {
    fn drop(&mut self) {
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            t.row = self.prev_row;
            t.base = self.prev_base;
        });
    }
}

struct OpGuard<'a, C: Fn() -> u64> {
    table: &'a SpanTable,
    row: usize,
    prev_row: usize,
    clock: &'a C,
    pushed: bool,
}

impl<C: Fn() -> u64> Drop for OpGuard<'_, C> {
    fn drop(&mut self) {
        if self.pushed {
            let (_, _elapsed, excl) = pop_frame((self.clock)());
            self.table.charge(self.row, Phase::Other, excl);
        }
        TLS.with(|t| t.borrow_mut().row = self.prev_row);
    }
}

/// A frozen copy of a [`SpanTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Exclusive simulated ns per `[row][phase]` cell.
    pub ns: [[u64; NPHASES]; SPAN_ROWS],
    /// Scope completions per `[row][phase]` cell.
    pub calls: [[u64; NPHASES]; SPAN_ROWS],
}

impl Default for SpanSnapshot {
    fn default() -> Self {
        SpanSnapshot {
            ns: [[0; NPHASES]; SPAN_ROWS],
            calls: [[0; NPHASES]; SPAN_ROWS],
        }
    }
}

impl SpanSnapshot {
    /// Exclusive ns booked to `(op, phase)`.
    pub fn ns_of(&self, op: OpKind, phase: Phase) -> u64 {
        self.ns[op as usize][phase as usize]
    }

    /// Total ns in one row (an op's full instrumented time, since the
    /// `op_scope` remainder lands in [`Phase::Other`]).
    pub fn row_total(&self, row: usize) -> u64 {
        self.ns[row].iter().sum()
    }

    /// Total ns in one phase across every row.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.ns.iter().map(|r| r[phase as usize]).sum()
    }

    /// Total instrumented ns in the whole matrix.
    pub fn grand_total(&self) -> u64 {
        self.ns.iter().flatten().sum()
    }

    /// Cell-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &SpanSnapshot) -> SpanSnapshot {
        let mut out = self.clone();
        for r in 0..SPAN_ROWS {
            for p in 0..NPHASES {
                out.ns[r][p] = self.ns[r][p].saturating_sub(earlier.ns[r][p]);
                out.calls[r][p] = self.calls[r][p].saturating_sub(earlier.calls[r][p]);
            }
        }
        out
    }
}

impl MetricSource for SpanTable {
    fn collect(&self, out: &mut dyn Visitor) {
        let snap = self.snapshot();
        for r in 0..SPAN_ROWS {
            for (p, phase) in ALL_PHASES.iter().enumerate() {
                if snap.calls[r][p] == 0 {
                    continue;
                }
                let base = format!("obsv_span_{}_{}", row_label(r), phase.label());
                out.counter(&format!("{base}_ns"), snap.ns[r][p]);
                out.counter(&format!("{base}_calls"), snap.calls[r][p]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::cell::Cell;
    use std::sync::Arc;

    /// A manually-advanced clock: every call returns the current value.
    struct FakeClock(Cell<u64>);

    impl FakeClock {
        fn new() -> FakeClock {
            FakeClock(Cell::new(0))
        }
        fn advance(&self, ns: u64) {
            self.0.set(self.0.get() + ns);
        }
        fn now(&self) -> u64 {
            self.0.get()
        }
    }

    #[test]
    fn disabled_scope_never_calls_the_clock() {
        let t = SpanTable::new();
        assert!(!t.enabled());
        let r = t.scope(
            Phase::Persist,
            || panic!("clock must not run while disabled"),
            || 42,
        );
        assert_eq!(r, 42);
        let r = t.op_scope(
            OpKind::Write,
            || panic!("clock must not run while disabled"),
            || 7,
        );
        assert_eq!(r, 7);
        assert_eq!(t.snapshot().grand_total(), 0);
    }

    #[test]
    fn nested_scopes_account_exclusive_time() {
        let t = SpanTable::new();
        t.set_enabled(true);
        let c = FakeClock::new();
        t.op_scope(
            OpKind::Write,
            || c.now(),
            || {
                c.advance(10); // op overhead before any phase
                t.scope(
                    Phase::DramCopy,
                    || c.now(),
                    || {
                        c.advance(100);
                        t.scope(Phase::Persist, || c.now(), || c.advance(40));
                        c.advance(5);
                    },
                );
                c.advance(3); // op overhead after
            },
        );
        let s = t.snapshot();
        assert_eq!(s.ns_of(OpKind::Write, Phase::DramCopy), 105);
        assert_eq!(s.ns_of(OpKind::Write, Phase::Persist), 40);
        assert_eq!(s.ns_of(OpKind::Write, Phase::Other), 13);
        // The row sums to the op's total elapsed time — nothing lost,
        // nothing double-counted.
        assert_eq!(s.row_total(OpKind::Write as usize), 158);
        assert_eq!(s.grand_total(), 158);
        assert_eq!(s.calls[OpKind::Write as usize][Phase::Persist as usize], 1);
    }

    #[test]
    fn detached_work_books_to_bg_and_leaves_the_op_clean() {
        let t = SpanTable::new();
        t.set_enabled(true);
        let c = FakeClock::new();
        t.op_scope(
            OpKind::Write,
            || c.now(),
            || {
                c.advance(10);
                // Background work on a detached timeline (e.g. the virtual
                // writeback actor): the clock may be far from the op's, and
                // none of it belongs to the op.
                t.detached(|| {
                    c.advance(500);
                    t.scope(Phase::Persist, || c.now(), || c.advance(1000));
                });
                c.advance(7);
            },
        );
        let s = t.snapshot();
        // The detached persist landed in the background row...
        assert_eq!(s.ns[BG_ROW][Phase::Persist as usize], 1000);
        assert_eq!(s.ns_of(OpKind::Write, Phase::Persist), 0);
        // ...and the op row carries the full elapsed window (the detached
        // interval passed on the same clock here, so it shows up in the
        // op's Other remainder rather than vanishing — with a truly
        // separate clock it simply would not advance the op's window).
        assert_eq!(s.ns_of(OpKind::Write, Phase::Other), 1517);
        assert_eq!(t.snapshot().calls[BG_ROW][Phase::Persist as usize], 1);
    }

    #[test]
    fn work_outside_an_op_lands_in_the_background_row() {
        let t = SpanTable::new();
        t.set_enabled(true);
        let c = FakeClock::new();
        t.scope(Phase::Persist, || c.now(), || c.advance(64));
        let s = t.snapshot();
        assert_eq!(s.ns[BG_ROW][Phase::Persist as usize], 64);
        assert_eq!(row_label(BG_ROW), "bg");
    }

    #[test]
    fn nested_op_scopes_share_the_row_without_double_counting() {
        let t = SpanTable::new();
        t.set_enabled(true);
        let c = FakeClock::new();
        // HiNFS open delegating to PMFS open: same op, two wrappers.
        t.op_scope(
            OpKind::Open,
            || c.now(),
            || {
                c.advance(5);
                t.op_scope(
                    OpKind::Open,
                    || c.now(),
                    || {
                        c.advance(20);
                        t.scope(Phase::Index, || c.now(), || c.advance(30));
                    },
                );
                c.advance(2);
            },
        );
        let s = t.snapshot();
        assert_eq!(s.ns_of(OpKind::Open, Phase::Index), 30);
        assert_eq!(s.ns_of(OpKind::Open, Phase::Other), 27);
        assert_eq!(s.row_total(OpKind::Open as usize), 57);
    }

    #[test]
    fn overflowing_the_frame_stack_is_safe() {
        let t = Arc::new(SpanTable::new());
        t.set_enabled(true);
        let c = FakeClock::new();
        fn nest(t: &SpanTable, c: &FakeClock, depth: usize) {
            if depth == 0 {
                c.advance(1);
                return;
            }
            t.scope(Phase::Journal, || c.now(), || nest(t, c, depth - 1));
        }
        nest(&t, &c, MAX_DEPTH + 8);
        // Deep frames went unmeasured but nothing panicked and the stack
        // unwound cleanly: a fresh scope still records.
        t.scope(Phase::Fence, || c.now(), || c.advance(9));
        let s = t.snapshot();
        assert_eq!(s.ns[BG_ROW][Phase::Fence as usize], 9);
    }

    #[test]
    fn snapshot_since_diffs_cellwise() {
        let t = SpanTable::new();
        t.set_enabled(true);
        let c = FakeClock::new();
        t.scope(Phase::Fence, || c.now(), || c.advance(10));
        let early = t.snapshot();
        t.scope(Phase::Fence, || c.now(), || c.advance(32));
        let d = t.snapshot().since(&early);
        assert_eq!(d.ns[BG_ROW][Phase::Fence as usize], 32);
        assert_eq!(d.calls[BG_ROW][Phase::Fence as usize], 1);
    }

    #[test]
    fn exposes_only_touched_cells() {
        let t = Arc::new(SpanTable::new());
        t.set_enabled(true);
        let c = FakeClock::new();
        t.op_scope(
            OpKind::Fsync,
            || c.now(),
            || t.scope(Phase::Fence, || c.now(), || c.advance(48)),
        );
        let reg = MetricsRegistry::new();
        reg.register("", t.clone());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obsv_span_fsync_fence_ns"), 48);
        assert_eq!(snap.counter("obsv_span_fsync_fence_calls"), 1);
        assert_eq!(snap.counter("obsv_span_fsync_other_calls"), 1);
        // Untouched cells stay out of the exposition entirely.
        assert!(!snap.to_prometheus().contains("span_write_persist_ns"));
    }

    #[test]
    fn labels_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert!(seen.insert(p.label()));
        }
        for r in 0..SPAN_ROWS {
            assert!(seen.insert(row_label(r)), "row {r} collides");
        }
    }
}
