//! The DRAM Block Index: a per-file B-tree in DRAM (paper §3.2, Fig 5).
//!
//! Keys are file block numbers (logical offsets aligned to the block size),
//! values are buffer-pool slot numbers. The paper keeps the whole structure
//! in DRAM "to enable fast index operations" and reuses PMFS's B-tree code;
//! here it is a textbook in-memory B-tree, generic over the value type so
//! the ghost buffer can reuse it.

/// Minimum degree: nodes hold `B-1 ..= 2B-1` keys (root may hold fewer).
const B: usize = 8;
const MAX_KEYS: usize = 2 * B - 1;

#[derive(Debug, Clone)]
struct Node<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    /// Empty for leaves; otherwise `keys.len() + 1` children. Boxed on
    /// purpose: `children.insert`/`remove` shift pointers, not whole nodes.
    #[allow(clippy::vec_box)]
    children: Vec<Box<Node<V>>>,
}

impl<V> Node<V> {
    fn leaf() -> Self {
        Node {
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }
}

/// An in-DRAM B-tree from file block number to `V`.
#[derive(Debug, Clone)]
pub struct BTreeIndex<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

impl<V> Default for BTreeIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BTreeIndex<V> {
    /// An empty index.
    pub fn new() -> Self {
        BTreeIndex { root: None, len: 0 }
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            match node.keys.binary_search(&key) {
                Ok(i) => return Some(&node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mut node = self.root.as_deref_mut()?;
        loop {
            match node.keys.binary_search(&key) {
                Ok(i) => return Some(&mut node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &mut node.children[i];
                }
            }
        }
    }

    /// Inserts `key -> val`, returning the previous value if present.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        let mut root = match self.root.take() {
            Some(r) => r,
            None => Box::new(Node::leaf()),
        };
        if root.is_full() {
            // Grow: split the old root under a fresh one.
            let mut new_root = Box::new(Node::leaf());
            new_root.children.push(root);
            split_child(&mut new_root, 0);
            root = new_root;
        }
        let prev = insert_nonfull(&mut root, key, val);
        self.root = Some(root);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut root = self.root.take()?;
        let out = remove_key(&mut root, key);
        if root.keys.is_empty() {
            self.root = if root.is_leaf() {
                None
            } else {
                Some(root.children.pop().expect("internal root has a child"))
            };
        } else {
            self.root = Some(root);
        }
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Visits every `(key, value)` in ascending key order.
    pub fn for_each(&self, f: &mut impl FnMut(u64, &V)) {
        if let Some(r) = &self.root {
            visit(r, f);
        }
    }

    /// Collects the keys in ascending order (test/diagnostic helper).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(&mut |k, _| out.push(k));
        out
    }

    /// Drains the index, visiting every entry (used when dropping a file's
    /// buffered state).
    pub fn drain(&mut self, f: &mut impl FnMut(u64, V)) {
        if let Some(r) = self.root.take() {
            drain_node(*r, f);
        }
        self.len = 0;
    }
}

fn visit<V>(node: &Node<V>, f: &mut impl FnMut(u64, &V)) {
    if node.is_leaf() {
        for (k, v) in node.keys.iter().zip(&node.vals) {
            f(*k, v);
        }
        return;
    }
    for i in 0..node.keys.len() {
        visit(&node.children[i], f);
        f(node.keys[i], &node.vals[i]);
    }
    visit(node.children.last().expect("internal node has children"), f);
}

fn drain_node<V>(node: Node<V>, f: &mut impl FnMut(u64, V)) {
    let Node {
        keys,
        vals,
        mut children,
    } = node;
    if children.is_empty() {
        for (k, v) in keys.into_iter().zip(vals) {
            f(k, v);
        }
        return;
    }
    let last = children.pop().expect("internal node has children");
    for ((k, v), c) in keys.into_iter().zip(vals).zip(children) {
        drain_node(*c, f);
        f(k, v);
    }
    drain_node(*last, f);
}

/// Splits the full child `i` of `parent`, hoisting its median.
fn split_child<V>(parent: &mut Node<V>, i: usize) {
    let child = &mut parent.children[i];
    debug_assert!(child.is_full());
    let mut right = Box::new(Node::leaf());
    right.keys = child.keys.split_off(B);
    right.vals = child.vals.split_off(B);
    if !child.is_leaf() {
        right.children = child.children.split_off(B);
    }
    let mid_key = child.keys.pop().expect("median key");
    let mid_val = child.vals.pop().expect("median val");
    parent.keys.insert(i, mid_key);
    parent.vals.insert(i, mid_val);
    parent.children.insert(i + 1, right);
}

fn insert_nonfull<V>(node: &mut Node<V>, key: u64, val: V) -> Option<V> {
    debug_assert!(!node.is_full());
    match node.keys.binary_search(&key) {
        Ok(i) => Some(std::mem::replace(&mut node.vals[i], val)),
        Err(mut i) => {
            if node.is_leaf() {
                node.keys.insert(i, key);
                node.vals.insert(i, val);
                None
            } else {
                if node.children[i].is_full() {
                    split_child(node, i);
                    match node.keys[i].cmp(&key) {
                        std::cmp::Ordering::Equal => {
                            return Some(std::mem::replace(&mut node.vals[i], val));
                        }
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => {}
                    }
                }
                insert_nonfull(&mut node.children[i], key, val)
            }
        }
    }
}

/// Removes `key` from the subtree at `node`, which must hold at least `B`
/// keys unless it is the root.
fn remove_key<V>(node: &mut Node<V>, key: u64) -> Option<V> {
    match node.keys.binary_search(&key) {
        Ok(i) => {
            if node.is_leaf() {
                node.keys.remove(i);
                return Some(node.vals.remove(i));
            }
            // Replace with predecessor or successor, or merge.
            if node.children[i].keys.len() >= B {
                let (pk, pv) = pop_max(&mut node.children[i]);
                node.keys[i] = pk;
                return Some(std::mem::replace(&mut node.vals[i], pv));
            }
            if node.children[i + 1].keys.len() >= B {
                let (sk, sv) = pop_min(&mut node.children[i + 1]);
                node.keys[i] = sk;
                return Some(std::mem::replace(&mut node.vals[i], sv));
            }
            merge_children(node, i);
            remove_key(&mut node.children[i], key)
        }
        Err(i) => {
            if node.is_leaf() {
                return None;
            }
            if node.children[i].keys.len() < B {
                fill_child(node, i);
                // Restructuring may have pulled the key into this node or
                // shifted the child the key descends into; re-search.
                if let Ok(j) = node.keys.binary_search(&key) {
                    return remove_at_internal(node, j);
                }
                let i = node.keys.partition_point(|&k| k < key);
                return remove_key(&mut node.children[i], key);
            }
            remove_key(&mut node.children[i], key)
        }
    }
}

fn remove_at_internal<V>(node: &mut Node<V>, i: usize) -> Option<V> {
    if node.children[i].keys.len() >= B {
        let (pk, pv) = pop_max(&mut node.children[i]);
        node.keys[i] = pk;
        return Some(std::mem::replace(&mut node.vals[i], pv));
    }
    if node.children[i + 1].keys.len() >= B {
        let (sk, sv) = pop_min(&mut node.children[i + 1]);
        node.keys[i] = sk;
        return Some(std::mem::replace(&mut node.vals[i], sv));
    }
    let key = node.keys[i];
    merge_children(node, i);
    remove_key(&mut node.children[i], key)
}

fn pop_max<V>(node: &mut Node<V>) -> (u64, V) {
    if node.is_leaf() {
        let k = node.keys.pop().expect("non-empty");
        let v = node.vals.pop().expect("non-empty");
        return (k, v);
    }
    let last = node.children.len() - 1;
    if node.children[last].keys.len() < B {
        fill_child(node, last);
    }
    let last = node.children.len() - 1;
    pop_max(&mut node.children[last])
}

fn pop_min<V>(node: &mut Node<V>) -> (u64, V) {
    if node.is_leaf() {
        let v = node.vals.remove(0);
        return (node.keys.remove(0), v);
    }
    if node.children[0].keys.len() < B {
        fill_child(node, 0);
    }
    pop_min(&mut node.children[0])
}

/// Ensures child `i` has at least `B` keys by borrowing or merging.
fn fill_child<V>(node: &mut Node<V>, i: usize) {
    if i > 0 && node.children[i - 1].keys.len() >= B {
        // Borrow from the left sibling through the separator.
        let (lk, lv, lc) = {
            let left = &mut node.children[i - 1];
            let k = left.keys.pop().expect("left sibling non-empty");
            let v = left.vals.pop().expect("left sibling non-empty");
            let c = if left.is_leaf() {
                None
            } else {
                left.children.pop()
            };
            (k, v, c)
        };
        let sep_k = std::mem::replace(&mut node.keys[i - 1], lk);
        let sep_v = std::mem::replace(&mut node.vals[i - 1], lv);
        let child = &mut node.children[i];
        child.keys.insert(0, sep_k);
        child.vals.insert(0, sep_v);
        if let Some(c) = lc {
            child.children.insert(0, c);
        }
    } else if i + 1 < node.children.len() && node.children[i + 1].keys.len() >= B {
        // Borrow from the right sibling through the separator.
        let (rk, rv, rc) = {
            let right = &mut node.children[i + 1];
            let v = right.vals.remove(0);
            let k = right.keys.remove(0);
            let c = if right.is_leaf() {
                None
            } else {
                Some(right.children.remove(0))
            };
            (k, v, c)
        };
        let sep_k = std::mem::replace(&mut node.keys[i], rk);
        let sep_v = std::mem::replace(&mut node.vals[i], rv);
        let child = &mut node.children[i];
        child.keys.push(sep_k);
        child.vals.push(sep_v);
        if let Some(c) = rc {
            child.children.push(c);
        }
    } else if i > 0 {
        merge_children(node, i - 1);
    } else {
        merge_children(node, i);
    }
}

/// Merges child `i+1` and the separator `i` into child `i`.
fn merge_children<V>(node: &mut Node<V>, i: usize) {
    let right = node.children.remove(i + 1);
    let sep_k = node.keys.remove(i);
    let sep_v = node.vals.remove(i);
    let left = &mut node.children[i];
    left.keys.push(sep_k);
    left.vals.push(sep_v);
    left.keys.extend(right.keys);
    left.vals.extend(right.vals);
    left.children.extend(right.children);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_index() {
        let idx: BTreeIndex<u32> = BTreeIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(0), None);
        assert_eq!(idx.keys(), Vec::<u64>::new());
    }

    #[test]
    fn insert_get_overwrite() {
        let mut idx = BTreeIndex::new();
        assert_eq!(idx.insert(5, 50u32), None);
        assert_eq!(idx.insert(3, 30), None);
        assert_eq!(idx.insert(5, 55), Some(50));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(5), Some(&55));
        assert_eq!(idx.get(3), Some(&30));
        assert_eq!(idx.get(4), None);
    }

    #[test]
    fn ascending_bulk_insert_and_iterate() {
        let mut idx = BTreeIndex::new();
        for i in 0..1000u64 {
            idx.insert(i, i as u32 * 2);
        }
        assert_eq!(idx.len(), 1000);
        assert_eq!(idx.keys(), (0..1000).collect::<Vec<_>>());
        for i in 0..1000u64 {
            assert_eq!(idx.get(i), Some(&(i as u32 * 2)));
        }
    }

    #[test]
    fn remove_everything_descending() {
        let mut idx = BTreeIndex::new();
        for i in 0..500u64 {
            idx.insert(i, i as u32);
        }
        for i in (0..500u64).rev() {
            assert_eq!(idx.remove(i), Some(i as u32), "removing {i}");
        }
        assert!(idx.is_empty());
        assert_eq!(idx.remove(7), None);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut idx = BTreeIndex::new();
        idx.insert(9, 1u32);
        *idx.get_mut(9).unwrap() += 41;
        assert_eq!(idx.get(9), Some(&42));
        assert_eq!(idx.get_mut(10), None);
    }

    #[test]
    fn drain_visits_everything_once() {
        let mut idx = BTreeIndex::new();
        for i in 0..100u64 {
            idx.insert(i * 7 % 101, i as u32);
        }
        let n = idx.len();
        let mut seen = Vec::new();
        idx.drain(&mut |k, _v| seen.push(k));
        assert_eq!(seen.len(), n);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "no duplicates");
        assert!(idx.is_empty());
    }

    proptest! {
        #[test]
        fn matches_btreemap_model(ops in prop::collection::vec(
            (0u8..3, 0u64..200, 0u32..1000), 1..400)) {
            let mut idx = BTreeIndex::new();
            let mut model = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(idx.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(idx.remove(k), model.remove(&k)),
                    _ => prop_assert_eq!(idx.get(k), model.get(&k)),
                }
                prop_assert_eq!(idx.len(), model.len());
            }
            let keys: Vec<u64> = model.keys().copied().collect();
            prop_assert_eq!(idx.keys(), keys);
        }

        #[test]
        fn random_heavy_churn(seed_keys in prop::collection::vec(0u64..50, 0..600)) {
            // Many duplicate keys force splits, borrows and merges.
            let mut idx = BTreeIndex::new();
            let mut model = BTreeMap::new();
            for (i, k) in seed_keys.iter().enumerate() {
                if i % 3 == 0 {
                    prop_assert_eq!(idx.remove(*k), model.remove(k));
                } else {
                    prop_assert_eq!(idx.insert(*k, i as u32), model.insert(*k, i as u32));
                }
            }
            for k in 0..50u64 {
                prop_assert_eq!(idx.get(k), model.get(&k));
            }
        }
    }
}
