//! Unified observability layer for the HiNFS reproduction suite.
//!
//! Three pieces, all dependency-free and cheap enough to thread through
//! every crate in the workspace:
//!
//! - [`Histo`]: lock-free log-bucketed latency histograms, recorded per
//!   [`OpKind`] through [`FsObs`];
//! - [`MetricsRegistry`] / [`MetricSource`]: one collection trait that
//!   unifies the per-subsystem counter structs (HiNFS, device, journal)
//!   behind Prometheus-style text exposition and JSON snapshots;
//! - [`TraceRing`]: a fixed-capacity lock-free ring of structured
//!   [`TraceEvent`]s (writeback reclaim, watermark crossings, foreground
//!   stalls, Buffer Benefit Model flips, journal commits).
//!
//! Everything is **off by default**: with timing and tracing disabled the
//! instrumentation in the file systems costs one relaxed atomic load per
//! hook.

mod contention;
mod coverage;
mod flight;
mod histo;
mod lineage;
mod registry;
mod snapshot;
mod span;
mod trace;

pub use contention::{
    ContentionSnapshot, ContentionTable, Level, Site, SiteSnapshot, TrackedCondvar, TrackedMutex,
    TrackedMutexGuard, TrackedReadGuard, TrackedRwLock, TrackedWriteGuard, WaitTimeoutResult,
    ALL_SITES, HINFS_SHARD_SITES, NSHARDS, NSITES, PMFS_ALLOC_SHARD_SITES, PMFS_INODE_SHARD_SITES,
    PMFS_NS_SHARD_SITES,
};
pub use coverage::{mag_bucket, CoverageDomain, CoverageMap, COVERAGE_DOMAINS};
pub use flight::{
    note_batch, note_fence, note_persisted, note_shard, FlightRecord, FlightRecorder,
    FlightSnapshot, TailAnatomy, FLIGHT_MERGED_TOPK, FLIGHT_TOPK, NO_SHARD,
};
pub use histo::{
    bucket_lower, bucket_of, bucket_upper, Histo, HistoSnapshot, N_BUCKETS, SUB_BUCKETS,
};
pub use lineage::{
    current_row as lineage_current_row, note_buffered, note_journaled, note_logical, DrainKind,
    Layer, LineageScope, LineageSnap, LineageTable, Stamp, ALL_LAYERS, LINEAGE_ROWS, NLAYERS,
};
pub use registry::{Counter, MetricSource, MetricsRegistry, RegistrySnapshot, Visitor};
pub use snapshot::{
    dirty_line_bucket, invariant_label, lrw_age_bucket, AuditReport, AuditViolation, BufferSnap,
    CacheSnap, DeviceSnap, FsSnapshot, Introspect, JournalSnap, AUDIT_INVARIANTS,
    DIRTY_LINE_BUCKETS, LRW_AGE_BOUNDS_NS, LRW_AGE_BUCKETS, SNAPSHOT_SCHEMA_VERSION,
};
pub use span::{row_label, Phase, SpanSnapshot, SpanTable, ALL_PHASES, BG_ROW, NPHASES, SPAN_ROWS};
pub use trace::{TraceEvent, TraceRecord, TraceRing};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards used by the per-thread collection structures (the slow-op log
/// here, the trace ring's segments). A power of two so `ordinal %
/// SHARDS` is a mask.
pub const COLLECTION_SHARDS: usize = 8;

static THREAD_COUNTER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A small dense id for the calling thread: 0 for the first thread that
/// asks, 1 for the next, and so on for the life of the process. Cached
/// in a thread-local, so the steady-state cost is one TLS read. Shard
/// selectors take this modulo their shard count — single-threaded runs
/// therefore always land in shard 0, which keeps them bit-identical to
/// the unsharded layout.
#[inline]
pub fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|o| {
        let v = o.get();
        if v != usize::MAX {
            return v;
        }
        let v = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
        o.set(v);
        v
    })
}

/// Syscall categories tracked per file system (the Fig 12 breakdown uses
/// `Read`, `Write`, `Unlink` and `Fsync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    Open = 0,
    Close = 1,
    Read = 2,
    Write = 3,
    Fsync = 4,
    Unlink = 5,
    Mkdir = 6,
    Readdir = 7,
    Stat = 8,
    Rename = 9,
    Truncate = 10,
}

/// Number of [`OpKind`] variants.
pub const NOPS: usize = 11;

/// All op kinds in discriminant order.
pub const ALL_OPS: [OpKind; NOPS] = [
    OpKind::Open,
    OpKind::Close,
    OpKind::Read,
    OpKind::Write,
    OpKind::Fsync,
    OpKind::Unlink,
    OpKind::Mkdir,
    OpKind::Readdir,
    OpKind::Stat,
    OpKind::Rename,
    OpKind::Truncate,
];

impl OpKind {
    /// Stable label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Unlink => "unlink",
            OpKind::Mkdir => "mkdir",
            OpKind::Readdir => "readdir",
            OpKind::Stat => "stat",
            OpKind::Rename => "rename",
            OpKind::Truncate => "truncate",
        }
    }
}

/// One of the k slowest operations seen so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowOp {
    /// Operation latency in simulated ns.
    pub ns: u64,
    /// The op kind.
    pub op: OpKind,
    /// When the op started, simulated ns.
    pub at_ns: u64,
}

/// Slots kept by the slow-op log.
const SLOW_CAP: usize = 16;

/// Per-file-system observability bundle: one latency histogram per op
/// kind, a top-k slowest-op log, and the trace ring. Timing and tracing
/// are independent switches, both off by default.
#[derive(Debug)]
pub struct FsObs {
    timing: AtomicBool,
    ops: [Histo; NOPS],
    /// Top-k slowest ops, sharded per thread ordinal so concurrent
    /// recorders never serialize on one mutex; [`FsObs::slowest`] merges
    /// the shards (the global top-k survives per-shard top-k pruning).
    slow: [Mutex<Vec<SlowOp>>; COLLECTION_SHARDS],
    /// The structured event ring, shared with subsystems (journal) that
    /// emit into the same timeline.
    pub trace: Arc<TraceRing>,
    /// The per-device span matrix, installed at mount so this bundle's
    /// exposition includes the OpKind × Phase breakdown.
    spans: OnceLock<Arc<SpanTable>>,
    /// Invariant relations checked by the online auditor.
    audit_checks: AtomicU64,
    /// Invariants found broken. Non-zero means structural corruption.
    audit_violations: AtomicU64,
    /// The per-op flight recorder (tail-latency anatomies), off by
    /// default like everything else.
    flight: FlightRecorder,
    /// The data-lifecycle provenance ledger (durability lag, per-layer
    /// write amplification), off by default like everything else.
    lineage: LineageTable,
}

impl Default for FsObs {
    fn default() -> Self {
        FsObs::new(1024)
    }
}

impl FsObs {
    /// A disabled bundle whose trace ring holds `trace_capacity` events.
    pub fn new(trace_capacity: usize) -> FsObs {
        FsObs {
            timing: AtomicBool::new(false),
            ops: std::array::from_fn(|_| Histo::new()),
            slow: std::array::from_fn(|_| Mutex::new(Vec::with_capacity(SLOW_CAP))),
            trace: Arc::new(TraceRing::new(trace_capacity)),
            spans: OnceLock::new(),
            audit_checks: AtomicU64::new(0),
            audit_violations: AtomicU64::new(0),
            flight: FlightRecorder::new(),
            lineage: LineageTable::new(),
        }
    }

    /// The per-op flight recorder bundled with this file system.
    #[inline]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The data-lifecycle provenance ledger bundled with this file
    /// system.
    #[inline]
    pub fn lineage(&self) -> &LineageTable {
        &self.lineage
    }

    /// Folds an auditor pass into this bundle: counts the checks, counts
    /// and traces every violation. Violations bypass the tracing switch —
    /// a broken invariant must never go unrecorded just because the ring
    /// is off.
    pub fn record_audit(&self, report: &AuditReport) {
        self.audit_checks
            .fetch_add(report.checks, Ordering::Relaxed);
        self.audit_violations
            .fetch_add(report.violations.len() as u64, Ordering::Relaxed);
        for v in &report.violations {
            self.trace.push(report.at_ns, v.event());
        }
    }

    /// Total invariant relations checked by recorded audit passes.
    pub fn audit_checks(&self) -> u64 {
        self.audit_checks.load(Ordering::Relaxed)
    }

    /// Total invariant violations recorded.
    pub fn audit_violations(&self) -> u64 {
        self.audit_violations.load(Ordering::Relaxed)
    }

    /// Installs the span matrix this file system charges into (the
    /// device's table). First caller wins, like `Journal::set_trace`.
    pub fn set_spans(&self, spans: Arc<SpanTable>) {
        let _ = self.spans.set(spans);
    }

    /// The installed span matrix, if any.
    pub fn spans(&self) -> Option<&Arc<SpanTable>> {
        self.spans.get()
    }

    /// Whether per-op latency recording is on.
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Switches per-op latency recording.
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
    }

    /// Switches trace-event capture.
    pub fn set_tracing(&self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Records one completed operation (called by the file systems when
    /// timing is enabled).
    pub fn record_op(&self, op: OpKind, ns: u64, at_ns: u64) {
        self.ops[op as usize].record(ns);
        let mut slow = self.slow[thread_ordinal() % COLLECTION_SHARDS]
            .lock()
            .unwrap();
        if slow.len() < SLOW_CAP {
            slow.push(SlowOp { ns, op, at_ns });
        } else if let Some(min) = slow.iter_mut().min_by_key(|s| s.ns) {
            if ns > min.ns {
                *min = SlowOp { ns, op, at_ns };
            }
        }
    }

    /// The latency histogram of one op kind.
    pub fn op_histo(&self, op: OpKind) -> &Histo {
        &self.ops[op as usize]
    }

    /// The slowest recorded ops, slowest first. Merges the per-thread
    /// shards: any globally-top-k op necessarily survives its own
    /// shard's top-k pruning, so the merge is exact.
    pub fn slowest(&self) -> Vec<SlowOp> {
        let mut v: Vec<SlowOp> = self
            .slow
            .iter()
            .flat_map(|shard| shard.lock().unwrap().clone())
            .collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.ns));
        v.truncate(SLOW_CAP);
        v
    }
}

impl MetricSource for FsObs {
    fn collect(&self, out: &mut dyn Visitor) {
        for op in ALL_OPS {
            let snap = self.ops[op as usize].snapshot();
            if snap.count() > 0 {
                out.histo(&format!("obsv_op_{}_ns", op.label()), snap);
            }
        }
        out.counter("obsv_trace_events", self.trace.emitted());
        out.counter("obsv_trace_dropped", self.trace.dropped());
        out.counter("obsv_audit_checks", self.audit_checks());
        out.counter("obsv_audit_violations", self.audit_violations());
        if self.flight.recorded() > 0 {
            out.counter("obsv_flight_records", self.flight.recorded());
        }
        let lin = self.lineage.snap();
        if self.lineage.enabled() || !lin.is_empty() {
            for layer in ALL_LAYERS {
                out.counter(
                    &format!("obsv_lineage_{}_bytes", layer.label()),
                    lin.layer(layer),
                );
            }
            out.counter("obsv_lineage_fences", lin.fences);
            out.counter("obsv_lineage_stamps", lin.stamps);
            out.counter("obsv_lineage_drains_sync", lin.drains_sync);
            out.counter("obsv_lineage_drains_lazy", lin.drains_lazy);
            out.gauge("obsv_lineage_max_lag_ns", lin.max_lag_ns);
            if lin.lag.count() > 0 {
                out.histo("obsv_lineage_lag_ns", lin.lag);
            }
        }
        if let Some(spans) = self.spans.get() {
            spans.collect(out);
        }
    }
}

/// Defines a struct of relaxed `AtomicU64` counters together with its
/// plain-`u64` snapshot type, `new`/`snapshot`/`since`, and a
/// [`MetricSource`] impl that reports every field as
/// `<prefix><field>` (or `<prefix><override>` with `field as "override"`).
///
/// ```
/// obsv::counter_set! {
///     /// Example counters.
///     pub struct DemoStats, snapshot DemoSnapshot, prefix "demo_" {
///         /// Cache hits.
///         pub hits,
///         pub misses as "lookup_misses",
///     }
/// }
/// let s = DemoStats::new();
/// s.hits.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
/// assert_eq!(s.snapshot().hits, 2);
/// ```
#[macro_export]
macro_rules! counter_set {
    (
        $(#[$smeta:meta])*
        $vis:vis struct $name:ident, snapshot $snap:ident, prefix $prefix:literal {
            $(
                $(#[$fmeta:meta])*
                $fvis:vis $field:ident $(as $mname:literal)?
            ),+ $(,)?
        }
    ) => {
        $(#[$smeta])*
        #[derive(Debug, Default)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field: ::std::sync::atomic::AtomicU64, )+
        }

        impl $name {
            /// Zeroed counters.
            $vis fn new() -> Self {
                Self::default()
            }

            /// Copies the current counter values.
            $vis fn snapshot(&self) -> $snap {
                $snap {
                    $( $field: self.$field.load(::std::sync::atomic::Ordering::Relaxed), )+
                }
            }
        }

        #[doc = concat!("Point-in-time copy of [`", stringify!($name), "`].")]
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        $vis struct $snap {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl $snap {
            /// Per-counter difference `self - earlier`, saturating at zero.
            $vis fn since(&self, earlier: &$snap) -> $snap {
                $snap {
                    $( $field: self.$field.saturating_sub(earlier.$field), )+
                }
            }
        }

        impl $crate::MetricSource for $name {
            fn collect(&self, out: &mut dyn $crate::Visitor) {
                $(
                    out.counter(
                        $crate::counter_set!(@name $prefix, $field $(, $mname)?),
                        self.$field.load(::std::sync::atomic::Ordering::Relaxed),
                    );
                )+
            }
        }
    };
    (@name $prefix:literal, $field:ident) => {
        concat!($prefix, stringify!($field))
    };
    (@name $prefix:literal, $field:ident, $mname:literal) => {
        concat!($prefix, $mname)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    counter_set! {
        /// Test counters.
        pub struct TStats, snapshot TSnapshot, prefix "t_" {
            /// Plain counter.
            pub alpha,
            /// Renamed counter.
            pub beta as "renamed_beta",
        }
    }

    struct Collect(Vec<(String, u64)>);

    impl Visitor for Collect {
        fn counter(&mut self, name: &str, value: u64) {
            self.0.push((name.to_string(), value));
        }
        fn gauge(&mut self, _: &str, _: u64) {}
        fn histo(&mut self, _: &str, _: HistoSnapshot) {}
    }

    #[test]
    fn counter_set_generates_everything() {
        let s = TStats::new();
        s.alpha.fetch_add(3, Ordering::Relaxed);
        s.beta.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.alpha, 3);
        assert_eq!(snap.beta, 1);
        s.alpha.fetch_add(2, Ordering::Relaxed);
        let d = s.snapshot().since(&snap);
        assert_eq!(d.alpha, 2);
        assert_eq!(d.beta, 0);
        let mut c = Collect(Vec::new());
        s.collect(&mut c);
        assert_eq!(
            c.0,
            vec![
                ("t_alpha".to_string(), 5),
                ("t_renamed_beta".to_string(), 1)
            ]
        );
    }

    #[test]
    fn fsobs_records_and_collects() {
        let obs = FsObs::new(8);
        assert!(!obs.timing_enabled());
        obs.set_timing(true);
        obs.record_op(OpKind::Read, 100, 0);
        obs.record_op(OpKind::Read, 300, 10);
        obs.record_op(OpKind::Fsync, 5000, 20);
        assert_eq!(obs.op_histo(OpKind::Read).snapshot().count(), 2);
        let slow = obs.slowest();
        assert_eq!(slow[0].op, OpKind::Fsync);
        assert_eq!(slow[0].ns, 5000);
        let reg = MetricsRegistry::new();
        reg.register("", Arc::new(obs));
        let snap = reg.snapshot();
        assert_eq!(snap.histo("obsv_op_read_ns").unwrap().count(), 2);
        assert!(
            snap.histo("obsv_op_write_ns").is_none(),
            "empty ops are omitted"
        );
    }

    #[test]
    fn record_audit_counts_and_traces_violations() {
        let obs = FsObs::new(8);
        let mut rep = AuditReport::new(77);
        rep.check_eq(2, 0, 0, 5, 5);
        rep.check_eq(4, 1, 3, 0b11, 0b01);
        obs.record_audit(&rep);
        assert_eq!(obs.audit_checks(), 2);
        assert_eq!(obs.audit_violations(), 1);
        // The violation reached the ring even though tracing is off.
        let tail = obs.trace.tail(8);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].at_ns, 77);
        assert_eq!(tail[0].ev.kind(), "audit.violation");
        // And the counters surface under the obsv_ prefix.
        let reg = MetricsRegistry::new();
        reg.register("", Arc::new(obs));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obsv_audit_checks"), 2);
        assert_eq!(snap.counter("obsv_audit_violations"), 1);
    }

    #[test]
    fn slow_log_keeps_topk() {
        let obs = FsObs::new(8);
        for i in 0..100u64 {
            obs.record_op(OpKind::Write, i, i);
        }
        let slow = obs.slowest();
        assert_eq!(slow.len(), SLOW_CAP);
        assert_eq!(slow[0].ns, 99);
        assert_eq!(slow.last().unwrap().ns, 100 - SLOW_CAP as u64);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in ALL_OPS {
            assert!(seen.insert(op.label()));
            assert_eq!(ALL_OPS[op as usize], op);
        }
    }
}
