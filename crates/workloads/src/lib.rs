//! Workloads and the experiment runner for the HiNFS reproduction.
//!
//! Everything the paper's evaluation (§5) runs is generated here:
//!
//! | Paper workload | Module |
//! |---|---|
//! | Filebench fileserver / webserver / webproxy / varmail | [`filebench`] |
//! | fio microbenchmark (Fig 1) | [`fio`] |
//! | Postmark | [`postmark`] |
//! | TPC-C (DBT2 on PostgreSQL) | [`tpcc`] (WAL-style transaction emulator) |
//! | Kernel-Grep / Kernel-Make | [`kernel`] |
//! | FIU Usr0/Usr1, LASR, MobiBench-Facebook traces | [`traces`] (synthetic generators matched to the published characteristics) |
//!
//! The [`runner`] executes logical actors against any [`fskit::FileSystem`]
//! on the deterministic virtual clock (actors are scheduled by smallest
//! clock; background machinery runs via `FileSystem::tick`) or on real
//! threads in spin mode, and produces a [`metrics::RunReport`] with the
//! per-op-type time breakdown the figures need.

pub mod filebench;
pub mod fileset;
pub mod fio;
pub mod kernel;
pub mod metrics;
pub mod postmark;
pub mod runner;
pub mod setups;
pub mod tpcc;
pub mod traces;

pub use metrics::{OpKind, RunReport};
pub use runner::{Actor, Ctx, RunLimit, Runner};
pub use setups::{ObsvOptions, SystemConfig, SystemKind};
