//! Background writeback: flushing, eviction and the reclaim policy
//! (paper §3.2).
//!
//! Dirty DRAM blocks are written back to NVMM at cacheline granularity
//! (CLFW) by:
//!
//! - the **reclaim path**, woken when free blocks drop below `Low_f`,
//!   evicting LRW victims until `High_f` is reached;
//! - the **periodic pass** (every 5 s), which also flushes any dirty block
//!   last written more than 30 s ago;
//! - **foreground stalls**: when the pool is exhausted before background
//!   writeback catches up, the writing thread flushes a victim itself and
//!   pays for it (the cost `Low_f` exists to avoid);
//! - **fsync**, which flushes the file's blocks on the caller's clock.
//!
//! In spin mode these run on real threads; in virtual mode they run as a
//! deterministic *writeback actor* whose own clock advances independently
//! of the foreground (see [`WbCtl`]).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use fskit::{FsError, Result};
use nvmm::{Cat, TimeMode, BLOCK_SIZE, CACHELINE};
use obsv::{ContentionTable, DrainKind, Site, TraceEvent, TrackedCondvar, TrackedMutex};
use pmfs::inode::InodeMem;
use pmfs::Layout;

use crate::buffer::{runs, Shared};
use crate::fs::Hinfs;
use crate::stats::HinfsStats;
use crate::tracker;

/// Control state of the writeback machinery.
#[derive(Debug)]
pub struct WbCtl {
    /// Per-shard writeback-actor virtual clocks (virtual mode only): each
    /// shard's background pass advances on its own timeline, mirroring one
    /// writeback thread per shard.
    pub(crate) clocks: Vec<AtomicU64>,
    /// Last periodic pass, in simulated ns.
    pub(crate) last_periodic: AtomicU64,
    pub(crate) stop: AtomicBool,
    pub(crate) kick_flag: TrackedMutex<bool>,
    pub(crate) kick_cv: TrackedCondvar,
    pub(crate) threads: TrackedMutex<Vec<JoinHandle<()>>>,
}

impl WbCtl {
    pub(crate) fn new(nshards: usize) -> WbCtl {
        WbCtl {
            clocks: (0..nshards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            last_periodic: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            kick_flag: TrackedMutex::new(Site::HinfsWriteback, false),
            kick_cv: TrackedCondvar::new(),
            threads: TrackedMutex::new(Site::HinfsWriteback, Vec::new()),
        }
    }

    /// Wires the control locks to the machine's contention profiler
    /// (first caller wins). `Hinfs::wrap` calls this at mount.
    pub(crate) fn attach_contention(&self, table: &Arc<ContentionTable>) {
        self.kick_flag.attach(table);
        self.threads.attach(table);
    }
}

/// Outcome of one flush attempt under the shared lock.
pub(crate) enum FlushTry {
    /// Flushed (or already clean).
    Done,
    /// The block maps to a hole; flushing needs the owner inode's lock.
    NeedsInode(u64),
}

impl Hinfs {
    /// Writes one buffered block's dirty lines to NVMM. Caller holds the
    /// shared lock; `state` supplies the owner inode when available. When
    /// the block covers a file hole and `state` is `None`, returns
    /// [`FlushTry::NeedsInode`] without side effects.
    ///
    /// `kind` classifies the drain for lineage: [`DrainKind::Sync`] when
    /// the flush runs inside a synchronization the caller asked for
    /// (fsync, O_SYNC eviction, sync/unmount), [`DrainKind::Lazy`] when
    /// the writeback machinery flushes behind the caller's back.
    pub(crate) fn flush_slot_locked(
        &self,
        sh: &mut Shared,
        slot: u32,
        state: Option<&mut InodeMem>,
        kind: DrainKind,
    ) -> Result<FlushTry> {
        let meta = *sh.pool().meta(slot);
        if meta.dirty == 0 {
            return Ok(FlushTry::Done);
        }
        let dev = self.inner.device();
        let pblk = if meta.nvmm_block != 0 {
            meta.nvmm_block
        } else {
            // Resolve or allocate the NVMM block.
            let looked_up = state
                .as_deref()
                .and_then(|st| pmfs::tree::lookup(dev, st, meta.iblk));
            match looked_up {
                Some(p) => p,
                None => {
                    let Some(st) = state else {
                        return Ok(FlushTry::NeedsInode(meta.ino));
                    };
                    // Allocate on flush: fresh block. Zero the clean lines
                    // a reader could reach (up to end of file); lines fully
                    // beyond EOF are unreachable and the write path zeroes
                    // them explicitly if the file later grows over them —
                    // this is what keeps CLFW's NVMM write traffic at
                    // dirty-line granularity (Fig 9b).
                    let p = self.inner.allocator().alloc()?;
                    let base = Layout::block_off(p);
                    let in_file = st
                        .size
                        .saturating_sub(meta.iblk * nvmm::BLOCK_SIZE as u64)
                        .min(nvmm::BLOCK_SIZE as u64) as usize;
                    let readable = crate::buffer::range_mask(0, in_file);
                    for (start, n) in runs(readable & !meta.dirty) {
                        dev.zero_persist(
                            Cat::Writeback,
                            base + start as u64 * CACHELINE as u64,
                            n as usize * CACHELINE,
                        );
                    }
                    pmfs::tree::insert(dev, self.inner.allocator(), st, meta.iblk, p)?;
                    st.blocks += 1;
                    // Persist the block-count change through the ordered
                    // FIFO. This is strictly best-effort: flushing must
                    // make progress even under journal pressure (it is the
                    // pressure-relief path), and the count is rebuilt from
                    // the tree at recovery anyway.
                    if let Ok(tx) = self.inner.journal().begin() {
                        match self.inner.log_write_inode(&tx, meta.ino, st) {
                            Ok(()) => tracker::enqueue(
                                sh.file_mut(meta.ino),
                                tx,
                                HashSet::new(),
                                self.obs
                                    .lineage()
                                    .stamp(self.env.now(), self.obs.trace.emitted()),
                                &self.stats,
                            ),
                            // Ring too full even for two undo entries:
                            // resolve the empty transaction and move on.
                            Err(_) => self.inner.journal().commit(tx),
                        }
                    }
                    p
                }
            }
        };
        // Write the dirty runs (CLFW: only dirty cachelines move).
        let base = Layout::block_off(pblk);
        for (start, n) in runs(meta.dirty) {
            let b = start as usize * CACHELINE;
            let data = &sh.pool().block(slot)[b..b + n as usize * CACHELINE];
            dev.write_persist(Cat::Writeback, base + b as u64, data);
        }
        dev.sfence();
        HinfsStats::bump(&self.stats.writeback_lines, meta.dirty.count_ones() as u64);
        HinfsStats::bump(&self.stats.writeback_blocks, 1);
        {
            let m = sh.pool_mut().meta_mut(slot);
            m.dirty = 0;
            m.nvmm_block = pblk;
        }
        sh.dirty_blocks -= 1;
        // The flush retires the block's ack stamp: record the durability
        // lag and put the causal link on the trace ring (the drained
        // event carries the origin op's seq window).
        let lin = self.obs.lineage();
        if lin.enabled() {
            let drained = meta.dirty.count_ones() as u64 * CACHELINE as u64;
            let now = self.env.now();
            let lag = lin.record_drain(&meta.stamp, kind, now, drained);
            let seq_hi = self.obs.trace.emitted();
            self.obs.trace.emit(now, || TraceEvent::LineageDrained {
                row: meta.stamp.row as u64,
                lazy: kind == DrainKind::Lazy,
                bytes: drained,
                lag_ns: lag,
                seq_lo: meta.stamp.seq,
                seq_hi,
            });
        }
        tracker::note_flushed(
            sh.file_mut(meta.ino),
            self.inner.journal(),
            meta.iblk,
            lin,
            kind,
            self.env.now(),
            &self.stats,
        );
        Ok(FlushTry::Done)
    }

    /// Flushes (if dirty) and releases a slot, dropping it from its file's
    /// DRAM Block Index. Same `state` contract as [`Self::flush_slot_locked`].
    pub(crate) fn evict_slot_locked(
        &self,
        sh: &mut Shared,
        slot: u32,
        state: Option<&mut InodeMem>,
        kind: DrainKind,
    ) -> Result<FlushTry> {
        if let FlushTry::NeedsInode(ino) = self.flush_slot_locked(sh, slot, state, kind)? {
            return Ok(FlushTry::NeedsInode(ino));
        }
        let meta = *sh.pool().meta(slot);
        if let Some(file) = sh.files.get_mut(&meta.ino) {
            file.index.remove(meta.iblk);
        }
        sh.pool_mut().release_slot(slot);
        Ok(FlushTry::Done)
    }

    /// Reclaims LRW victims until `target_free` blocks are free, bracketing
    /// the pass with trace events when tracing is on.
    ///
    /// `own` lends the caller's already-locked inode so its own blocks can
    /// be flushed without re-locking. `blocking` selects whether foreign
    /// inode locks may be waited on (background) or only tried
    /// (foreground stall path — waiting there could deadlock).
    pub(crate) fn reclaim(
        &self,
        si: usize,
        target_free: usize,
        own: Option<(u64, &mut InodeMem)>,
        blocking: bool,
    ) {
        if !self.obs.trace.enabled() {
            self.reclaim_loop(si, target_free, own, blocking);
            return;
        }
        let free = self.shards[si].lock().pool().free_count() as u64;
        self.obs
            .trace
            .emit(self.env.now(), || obsv::TraceEvent::ReclaimBegin {
                free,
                target: target_free as u64,
            });
        let victims = self.reclaim_loop(si, target_free, own, blocking);
        let free = self.shards[si].lock().pool().free_count() as u64;
        self.obs
            .trace
            .emit(self.env.now(), || obsv::TraceEvent::ReclaimEnd {
                victims,
                free,
            });
    }

    /// The reclaim loop proper; returns the number of evicted victims.
    fn reclaim_loop(
        &self,
        si: usize,
        target_free: usize,
        mut own: Option<(u64, &mut InodeMem)>,
        blocking: bool,
    ) -> u64 {
        let mut victims = 0;
        loop {
            let mut sh = self.shards[si].lock();
            if sh.pool().free_count() >= target_free {
                return victims;
            }
            // Find the oldest victim we can handle in this iteration.
            let mut victim: Option<(u32, u64)> = None; // (slot, ino-if-foreign)
            for slot in sh.pool().lrw.iter_from_tail() {
                let m = sh.pool().meta(slot);
                let self_sufficient = m.dirty == 0 || m.nvmm_block != 0;
                let is_own = own.as_ref().is_some_and(|(oino, _)| *oino == m.ino);
                if self_sufficient || is_own {
                    victim = Some((slot, 0));
                    break;
                }
                if victim.is_none() {
                    victim = Some((slot, m.ino));
                }
            }
            let Some((slot, foreign_ino)) = victim else {
                return victims; // pool empty of victims (everything already free)
            };
            if foreign_ino == 0 {
                let state = own.as_mut().map(|(_, st)| &mut **st);
                // Self-sufficient or own-inode victims cannot fail with
                // NeedsInode; allocator exhaustion aborts the pass.
                // Pool-pressure eviction drains behind the ack: lazy.
                if self
                    .evict_slot_locked(&mut sh, slot, state, DrainKind::Lazy)
                    .is_err()
                {
                    return victims;
                }
                victims += 1;
                continue;
            }
            // Foreign hole-block: take the owner's inode lock with the
            // shared lock dropped (lock order: inode before shared).
            drop(sh);
            let Ok(handle) = self.inner.inode(foreign_ino) else {
                continue; // raced with deletion; rescan
            };
            let guard = if blocking {
                Some(handle.state.write())
            } else {
                handle.state.try_write()
            };
            let Some(mut guard) = guard else {
                // Foreground stall path: do not wait (deadlock risk);
                // rescan — background writeback will handle it.
                std::thread::yield_now();
                continue;
            };
            let mut sh = self.shards[si].lock();
            // Re-validate after re-locking.
            let still = sh.slot_of(foreign_ino, sh.pool().meta(slot).iblk) == Some(slot)
                && sh.pool().meta(slot).ino == foreign_ino;
            if still
                && self
                    .evict_slot_locked(&mut sh, slot, Some(&mut guard), DrainKind::Lazy)
                    .is_ok()
            {
                victims += 1;
            }
        }
    }

    /// One full writeback pass over every shard at time `now` (on the
    /// caller's clock) — the spin-mode thread body.
    pub(crate) fn wb_pass(&self, now: u64) {
        for si in 0..self.shards.len() {
            self.wb_pass_shard(si, now);
        }
        // Periodic online audit: each background pass re-verifies the
        // index/bitmap/LRW invariants when the mount has auditing on.
        self.maybe_audit();
    }

    /// One writeback pass over shard `si`: watermark reclaim against the
    /// shard's own `Low_f`/`High_f`, then the 30 s dirty-age flush along
    /// the shard's LRW list.
    pub(crate) fn wb_pass_shard(&self, si: usize, now: u64) {
        // Injected stall: the writeback actor simply makes no progress this
        // pass. Foreground paths must degrade gracefully (flush-on-demand
        // via fsync / pool-pressure reclaim in the write path still run).
        if nvmm::fault::writeback_stalled(self.inner.device()) {
            return;
        }
        // Background provenance: traffic of this pass lands in the bg row
        // (when an op's own reclaim runs inline, its frame stays owner).
        let _lin = self.obs.lineage().bg_scope();
        {
            let sh = self.shards[si].lock();
            let cap = sh.pool().capacity();
            let free = sh.pool().free_count();
            drop(sh);
            if free < self.cfg.low_blocks_of(cap) {
                self.reclaim(si, self.cfg.high_blocks_of(cap), None, true);
            }
        }
        // Age-based flush: the LRW list is ordered by last write, so scan
        // from the LRW end until blocks get too young.
        let mut age_flushed: u64 = 0;
        loop {
            let mut sh = self.shards[si].lock();
            let mut target: Option<(u32, u64)> = None;
            for slot in sh.pool().lrw.iter_from_tail() {
                let m = sh.pool().meta(slot);
                if m.last_write_ns + self.cfg.dirty_age_ns > now {
                    break;
                }
                if m.dirty != 0 {
                    target = Some((slot, m.ino));
                    break;
                }
            }
            let Some((slot, ino)) = target else { break };
            match self.flush_slot_locked(&mut sh, slot, None, DrainKind::Lazy) {
                Ok(FlushTry::Done) => {
                    age_flushed += 1;
                    continue;
                }
                Ok(FlushTry::NeedsInode(_)) => {
                    drop(sh);
                    let Ok(handle) = self.inner.inode(ino) else {
                        continue;
                    };
                    let mut guard = handle.state.write();
                    let mut sh = self.shards[si].lock();
                    let iblk = sh.pool().meta(slot).iblk;
                    if sh.slot_of(ino, iblk) == Some(slot)
                        && matches!(
                            self.flush_slot_locked(
                                &mut sh,
                                slot,
                                Some(&mut guard),
                                DrainKind::Lazy
                            ),
                            Ok(FlushTry::Done)
                        )
                    {
                        age_flushed += 1;
                    }
                }
                Err(_) => break,
            }
        }
        if age_flushed > 0 {
            self.obs
                .trace
                .emit(now, || obsv::TraceEvent::PeriodicPass { age_flushed });
        }
    }

    /// Virtual-mode hook: runs due background work on the writeback actor's
    /// clock (never the caller's).
    pub(crate) fn tick_virtual(&self, now: u64) {
        if self.env.mode() != TimeMode::Virtual {
            return;
        }
        let last = self.wb.last_periodic.load(Ordering::Relaxed);
        let periodic_due = now.saturating_sub(last) >= self.cfg.periodic_wb_ns;
        if periodic_due {
            self.wb.last_periodic.store(now, Ordering::Relaxed);
        }
        // Each shard's writeback actor runs at most MAX_LEAD ahead of the
        // foreground: a real background thread shares wall time with its
        // producers, and bounding the lead also re-anchors the actor after
        // a timeline rebase (env.rebase() moves the foreground back to 0).
        const MAX_LEAD: u64 = 20_000_000; // 20 ms
        let mut ran = false;
        for si in 0..self.shards.len() {
            let need_reclaim = {
                let sh = self.shards[si].lock();
                sh.pool().free_count() < self.cfg.low_blocks_of(sh.pool().capacity())
            };
            if !need_reclaim && !periodic_due {
                continue;
            }
            let wb_now = self.wb.clocks[si]
                .load(Ordering::Relaxed)
                .clamp(now, now + MAX_LEAD);
            // The pass runs inline on the caller's thread but on the shard
            // actor's own timeline: detach span attribution so its device
            // time lands in the background row, not in whichever op
            // triggered it.
            let ((), end) = self
                .dev()
                .spans()
                .detached(|| self.env.with_now(wb_now, || self.wb_pass_shard(si, wb_now)));
            self.wb.clocks[si].store(end, Ordering::Relaxed);
            ran = true;
        }
        if ran {
            // Re-verify the invariants once per tick, not once per shard.
            self.maybe_audit();
        }
    }

    /// Wakes the background threads (spin mode) or runs the actor
    /// (virtual mode).
    pub(crate) fn kick_background(&self, now: u64) {
        match self.env.mode() {
            TimeMode::Virtual => self.tick_virtual(now),
            TimeMode::Spin => {
                let mut flag = self.wb.kick_flag.lock();
                *flag = true;
                self.wb.kick_cv.notify_all();
            }
        }
    }

    /// Spawns the spin-mode writeback threads ("multiple independent kernel
    /// threads created at mount time").
    pub(crate) fn start_background(self: &Arc<Self>) {
        if self.env.mode() != TimeMode::Spin {
            return;
        }
        let mut threads = self.wb.threads.lock();
        for _ in 0..self.cfg.wb_threads.max(1) {
            let fs = Arc::clone(self);
            threads.push(std::thread::spawn(move || loop {
                {
                    let mut flag = fs.wb.kick_flag.lock();
                    if !*flag {
                        let timeout = std::time::Duration::from_nanos(fs.cfg.periodic_wb_ns);
                        fs.wb.kick_cv.wait_for(&mut flag, timeout);
                    }
                    *flag = false;
                }
                if fs.wb.stop.load(Ordering::Relaxed) {
                    return;
                }
                fs.wb_pass(fs.env.now());
            }));
        }
    }

    /// Stops and joins the background threads (unmount).
    pub(crate) fn stop_background(&self) {
        self.wb.stop.store(true, Ordering::Relaxed);
        {
            let mut flag = self.wb.kick_flag.lock();
            *flag = true;
            self.wb.kick_cv.notify_all();
        }
        let mut threads = self.wb.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Flushes every dirty buffered block of every file (sync/unmount) —
    /// a synchronization the caller asked for, so the drains are sync.
    pub(crate) fn flush_all(&self) -> Result<()> {
        self.flush_files(true, DrainKind::Sync)
    }

    /// Best-effort global flush that skips inodes whose locks are busy.
    /// Used to relieve journal pressure while a file lock is already held
    /// (blocking there could deadlock with another writer doing the same).
    /// Nobody asked for this data to become durable — the drains are lazy.
    pub(crate) fn flush_all_opportunistic(&self) {
        let _ = self.flush_files(false, DrainKind::Lazy);
    }

    fn flush_files(&self, blocking: bool, kind: DrainKind) -> Result<()> {
        // Shards are visited in index order and inos sorted within each:
        // flush order feeds the journal and the bandwidth-gate calendar,
        // and HashMap order would make virtual time run-dependent.
        for si in 0..self.shards.len() {
            let mut inos: Vec<u64> = {
                let sh = self.shards[si].lock();
                sh.files.keys().copied().collect()
            };
            inos.sort_unstable();
            for ino in inos {
                let Ok(handle) = self.inner.inode(ino) else {
                    continue;
                };
                let guard = if blocking {
                    Some(handle.state.write())
                } else {
                    handle.state.try_write()
                };
                let Some(mut guard) = guard else {
                    continue;
                };
                let mut sh = self.shards[si].lock();
                let slots: Vec<u32> = match sh.files.get(&ino) {
                    Some(f) => {
                        let mut v = Vec::new();
                        f.index.for_each(&mut |_, s| v.push(*s));
                        v
                    }
                    None => continue,
                };
                for slot in slots {
                    if sh.pool().meta(slot).dirty != 0 {
                        match self.flush_slot_locked(&mut sh, slot, Some(&mut guard), kind)? {
                            FlushTry::Done => {}
                            FlushTry::NeedsInode(_) => {
                                return Err(FsError::Corrupted("flush_all could not map block"))
                            }
                        }
                    }
                }
                if let Some(file) = sh.files.get_mut(&ino) {
                    // All blocks are clean: no pending entry may gate a
                    // commit.
                    for t in &mut file.txs {
                        t.pending.clear();
                    }
                    tracker::drain_ready(
                        file,
                        self.inner.journal(),
                        self.obs.lineage(),
                        kind,
                        self.env.now(),
                        &self.stats,
                    );
                    debug_assert!(file.txs.is_empty(), "flush_all left open transactions");
                }
            }
        }
        Ok(())
    }

    /// Total buffered dirty blocks across every shard (diagnostics).
    pub fn dirty_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().dirty_blocks).sum()
    }

    /// Free DRAM buffer blocks across every shard (diagnostics).
    pub fn free_buffer_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().pool().free_count())
            .sum()
    }

    /// Buffer capacity in blocks (sum of the shard pools).
    pub fn buffer_capacity(&self) -> usize {
        let _ = BLOCK_SIZE;
        self.shards.iter().map(|s| s.lock().pool().capacity()).sum()
    }
}
