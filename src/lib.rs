//! # hinfs-suite — a reproduction of HiNFS (EuroSys 2016)
//!
//! *A High Performance File System for Non-Volatile Main Memory* —
//! Jiaxin Ou, Jiwu Shu, Youyou Lu.
//!
//! This crate re-exports the whole workspace as one convenient façade:
//!
//! - [`hinfs`] — the paper's contribution: the NVMM-aware write buffer
//!   file system (plus its NCLFW / WB ablation variants);
//! - [`pmfs`] — the PMFS-like substrate and baseline (direct access,
//!   cacheline-granular metadata undo journal);
//! - [`extfs`] / [`blockdev`] — the block-based baselines (ext2/ext4 on an
//!   NVMMBD RAM-disk emulator, and EXT4-DAX);
//! - [`nvmm`] — the NVMM device model: write latency/bandwidth emulation,
//!   virtual or busy-wait time, persistence domain with crash simulation;
//! - [`fskit`] — the shared `FileSystem` trait every system implements;
//! - [`workloads`] — filebench/fio/postmark/TPC-C/kernel/trace generators
//!   and the deterministic experiment runner.
//!
//! ## Quickstart
//!
//! ```
//! use hinfs_suite::prelude::*;
//!
//! // An emulated machine: 200 ns NVMM writes, 1 GB/s write bandwidth.
//! let env = SimEnv::new_virtual(CostModel::default());
//! let dev = NvmmDevice::new(env.clone(), 64 << 20);
//!
//! // Format and mount HiNFS with an 8 MiB DRAM write buffer.
//! let fs = Hinfs::mkfs(
//!     dev,
//!     PmfsOptions::default(),
//!     HinfsConfig::default().with_buffer_bytes(8 << 20),
//! )
//! .unwrap();
//!
//! let fd = fs.open("/hello", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
//! fs.write(fd, 0, b"buffered in DRAM, durable after fsync").unwrap();
//! fs.fsync(fd).unwrap();
//! fs.close(fd).unwrap();
//! fs.unmount().unwrap();
//! ```

pub use blockdev;
pub use extfs;
pub use faultfs;
pub use fskit;
pub use hinfs;
pub use nvmm;
pub use pmfs;
pub use workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use extfs::{ExtMode, ExtOptions, Extfs};
    pub use faultfs::{FsKind, Harness, InjectedFault, Script, SweepConfig};
    pub use fskit::{DirEntry, Fd, FileSystem, FileType, FsError, OpenFlags, Stat};
    pub use hinfs::{Hinfs, HinfsConfig};
    pub use nvmm::{Cat, CostModel, NvmmDevice, SimEnv, TimeMode, BLOCK_SIZE, CACHELINE};
    pub use pmfs::{Pmfs, PmfsOptions};
    pub use workloads::runner::{Actor, Ctx, RunLimit, Runner};
    pub use workloads::setups::{build, SystemConfig, SystemKind};
}
