//! Micro-benchmarks of single file system operations across the systems,
//! in spin mode (real busy-wait delays, like the paper's emulator).

use criterion::{criterion_group, criterion_main, Criterion};
use fskit::OpenFlags;
use nvmm::TimeMode;
use workloads::setups::{build, SystemConfig, SystemKind};

fn cfg() -> SystemConfig {
    SystemConfig {
        device_bytes: 64 << 20,
        mode: TimeMode::Spin,
        buffer_bytes: 8 << 20,
        cache_pages: 2048,
        journal_blocks: 256,
        inode_count: 8192,
        ..SystemConfig::default()
    }
}

fn write_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_4k");
    g.sample_size(20);
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let sys = build(kind, &cfg()).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        let data = vec![0xabu8; 4096];
        let mut i = 0u64;
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                // Rotate over 1024 blocks to exercise allocation + reuse.
                sys.fs.write(fd, (i % 1024) * 4096, &data).expect("write");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

fn read_4k(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_4k");
    g.sample_size(20);
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let sys = build(kind, &cfg()).expect("build");
        let fd = sys
            .fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        sys.fs.write(fd, 0, &vec![1u8; 4 << 20]).expect("prime");
        sys.fs.fsync(fd).expect("fsync");
        let mut buf = vec![0u8; 4096];
        let mut i = 0u64;
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                sys.fs.read(fd, (i % 1024) * 4096, &mut buf).expect("read");
                i += 1;
            })
        });
        sys.fs.close(fd).expect("close");
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

fn create_unlink(c: &mut Criterion) {
    let mut g = c.benchmark_group("create_unlink");
    g.sample_size(20);
    for kind in [SystemKind::Pmfs, SystemKind::Hinfs, SystemKind::Ext4Bd] {
        let sys = build(kind, &cfg()).expect("build");
        let mut i = 0u64;
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let path = format!("/t{i}");
                let fd = sys
                    .fs
                    .open(&path, OpenFlags::RDWR | OpenFlags::CREATE)
                    .expect("create");
                sys.fs.write(fd, 0, &[9u8; 1024]).expect("write");
                sys.fs.close(fd).expect("close");
                sys.fs.unlink(&path).expect("unlink");
                i += 1;
            })
        });
        sys.fs.unmount().expect("unmount");
    }
    g.finish();
}

criterion_group!(fs_ops, write_4k, read_4k, create_unlink);
criterion_main!(fs_ops);
