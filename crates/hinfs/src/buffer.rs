//! The DRAM write buffer: block pool, Cacheline Bitmaps, and per-file
//! buffered state.
//!
//! The pool is a flat arena of 4 KiB DRAM blocks. Each block carries two
//! 64-bit *Cacheline Bitmaps* (paper §3.2.1):
//!
//! - `valid` — which 64 B lines hold data (fetched from NVMM or written);
//! - `dirty` — which lines differ from NVMM and must be written back.
//!
//! CLFW (Cacheline Level Fetch/Writeback) operates on these masks: an
//! unaligned write only fetches the lines it partially overwrites, and
//! writeback only persists the dirty lines.

use std::collections::{HashMap, HashSet, VecDeque};

use nvmm::{BLOCK_SIZE, CACHELINE, LINES_PER_BLOCK};

use crate::index::BTreeIndex;
use crate::lrw::LrwList;

/// A full cacheline mask (all 64 lines of a block).
pub const FULL_MASK: u64 = u64::MAX;

/// Returns the mask of cachelines touched by `[off, off+len)` within a
/// block.
///
/// # Examples
///
/// ```
/// // Bytes 0..112 touch lines 0 and 1.
/// assert_eq!(hinfs::buffer::range_mask(0, 112), 0b11);
/// assert_eq!(hinfs::buffer::range_mask(64, 64), 0b10);
/// assert_eq!(hinfs::buffer::range_mask(0, 4096), u64::MAX);
/// ```
pub fn range_mask(off: usize, len: usize) -> u64 {
    debug_assert!(off + len <= BLOCK_SIZE);
    if len == 0 {
        return 0;
    }
    let first = off / CACHELINE;
    let last = (off + len - 1) / CACHELINE;
    let n = last - first + 1;
    if n >= 64 {
        FULL_MASK
    } else {
        ((1u64 << n) - 1) << first
    }
}

/// Returns the mask of cachelines *fully covered* by `[off, off+len)` —
/// these lines can be overwritten without a fetch.
pub fn covered_mask(off: usize, len: usize) -> u64 {
    debug_assert!(off + len <= BLOCK_SIZE);
    if len < CACHELINE {
        return 0;
    }
    let first = off.div_ceil(CACHELINE);
    let last = (off + len) / CACHELINE; // exclusive
    if last <= first {
        return 0;
    }
    let n = last - first;
    if n >= 64 {
        FULL_MASK
    } else {
        ((1u64 << n) - 1) << first
    }
}

/// Iterates the maximal runs of consecutive set bits as
/// `(first_line, line_count)` pairs — the paper's trick of using one
/// `memcpy` per run of consecutive cachelines with equal bitmap state.
pub fn runs(mask: u64) -> RunIter {
    RunIter { mask, base: 0 }
}

/// Iterator over consecutive-bit runs of a mask.
pub struct RunIter {
    mask: u64,
    base: u32,
}

impl Iterator for RunIter {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.mask == 0 {
            return None;
        }
        let skip = self.mask.trailing_zeros();
        self.mask >>= skip;
        let run = self.mask.trailing_ones();
        let start = self.base + skip;
        self.base += skip + run;
        self.mask = if run == 64 { 0 } else { self.mask >> run };
        Some((start, run))
    }
}

/// Metadata of one pooled DRAM block.
#[derive(Debug, Clone, Copy)]
pub struct BlockMeta {
    /// Owning inode.
    pub ino: u64,
    /// File block number.
    pub iblk: u64,
    /// Lines holding data.
    pub valid: u64,
    /// Lines that must be written back.
    pub dirty: u64,
    /// Last write timestamp (drives the LRW order and the 30 s rule).
    pub last_write_ns: u64,
    /// The NVMM block this buffer block writes back to, if already known
    /// (the paper's Index Node stores both the DRAM and the NVMM block
    /// numbers, Fig 5). Zero = not yet mapped (allocate on flush).
    pub nvmm_block: u64,
    /// Lineage ack stamp of the clean→dirty transition (provenance of
    /// the data a later flush drains; default when lineage is off).
    pub stamp: obsv::Stamp,
}

impl BlockMeta {
    fn empty() -> BlockMeta {
        BlockMeta {
            ino: 0,
            iblk: 0,
            valid: 0,
            dirty: 0,
            last_write_ns: 0,
            nvmm_block: 0,
            stamp: obsv::Stamp::default(),
        }
    }
}

/// The DRAM block pool with its LRW list.
#[derive(Debug)]
pub struct Pool {
    data: Vec<u8>,
    meta: Vec<BlockMeta>,
    free: Vec<u32>,
    /// The global LRW list over occupied slots.
    pub lrw: LrwList,
    capacity: usize,
}

impl Pool {
    /// Creates a pool of `nblocks` DRAM blocks.
    pub fn new(nblocks: usize) -> Pool {
        assert!(nblocks >= 2, "pool needs at least two blocks");
        Pool {
            data: vec![0u8; nblocks * BLOCK_SIZE],
            meta: vec![BlockMeta::empty(); nblocks],
            free: (0..nblocks as u32).rev().collect(),
            lrw: LrwList::new(nblocks),
            capacity: nblocks,
        }
    }

    /// Total blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently free blocks.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Takes a free slot, if any, binding it to `(ino, iblk)` and linking
    /// it at the MRW end.
    pub fn alloc_slot(&mut self, ino: u64, iblk: u64, now: u64) -> Option<u32> {
        let slot = self.free.pop()?;
        self.meta[slot as usize] = BlockMeta {
            ino,
            iblk,
            valid: 0,
            dirty: 0,
            last_write_ns: now,
            nvmm_block: 0,
            stamp: obsv::Stamp::default(),
        };
        self.lrw.push_head(slot);
        Some(slot)
    }

    /// Unlinks and releases a slot.
    pub fn release_slot(&mut self, slot: u32) {
        self.lrw.unlink(slot);
        self.meta[slot as usize] = BlockMeta::empty();
        self.free.push(slot);
    }

    /// The metadata of a slot.
    pub fn meta(&self, slot: u32) -> &BlockMeta {
        &self.meta[slot as usize]
    }

    /// Mutable metadata of a slot.
    pub fn meta_mut(&mut self, slot: u32) -> &mut BlockMeta {
        &mut self.meta[slot as usize]
    }

    /// The 4 KiB payload of a slot.
    pub fn block(&self, slot: u32) -> &[u8] {
        let b = slot as usize * BLOCK_SIZE;
        &self.data[b..b + BLOCK_SIZE]
    }

    /// Mutable payload of a slot.
    pub fn block_mut(&mut self, slot: u32) -> &mut [u8] {
        let b = slot as usize * BLOCK_SIZE;
        &mut self.data[b..b + BLOCK_SIZE]
    }

    /// Number of dirty lines across a mask (helper for sizing flushes).
    pub fn dirty_lines(&self, slot: u32) -> u32 {
        self.meta[slot as usize].dirty.count_ones()
    }
}

/// One open lazy-persistent transaction of a file (paper §4.1): its journal
/// handle plus the file blocks whose DRAM data must reach NVMM before the
/// commit record may be written.
#[derive(Debug)]
pub struct LocalTx {
    /// The PMFS journal transaction, committed by the tracker.
    pub tx: pmfs::TxHandle,
    /// File blocks still awaiting flush.
    pub pending: HashSet<u64>,
    /// Lineage ack stamp of the journaling op (the deferred commit's
    /// durability lag is measured against this).
    pub stamp: obsv::Stamp,
}

/// Buffer Benefit Model counters for one data block (paper §3.3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStats {
    /// `N_cw`: cacheline writes since the previous synchronization.
    pub n_cw: u64,
    /// Ghost-buffer dirty mask: the lines that *would* be dirty had the
    /// block been buffered (maintained for eager blocks; index metadata
    /// only, no data — "less than 1 % of the total DRAM buffer space").
    pub ghost_dirty: u64,
    /// The previous synchronization's decision (`true` = lazy beneficial),
    /// for the Fig 6 accuracy measurement.
    pub prev_lazy: Option<bool>,
}

/// Per-file buffered state: the DRAM Block Index plus policy bookkeeping.
#[derive(Debug, Default)]
pub struct FileBuf {
    /// DRAM Block Index: file block -> pool slot.
    pub index: BTreeIndex<u32>,
    /// Blocks currently in the Eager-Persistent state, with the time the
    /// state was set.
    pub eager: HashMap<u64, u64>,
    /// Buffer Benefit Model state per block.
    pub bbm: HashMap<u64, BlockStats>,
    /// Open lazy transactions in begin order (commit must follow this
    /// order; see `tracker`).
    pub txs: VecDeque<LocalTx>,
    /// Last synchronization time of the file (drives Eager→Lazy decay).
    pub last_sync_ns: u64,
    /// While a direct mapping is live every write is eager (paper §4.2).
    pub mmap_pinned: bool,
}

impl FileBuf {
    /// Creates empty per-file state.
    pub fn new() -> FileBuf {
        FileBuf::default()
    }
}

/// The buffer half of HiNFS behind one lock: pool plus per-file state.
#[derive(Debug, Default)]
pub struct Shared {
    /// The DRAM block pool. `None` until `Shared::init`.
    pool: Option<Pool>,
    /// Per-inode buffered state.
    pub files: HashMap<u64, FileBuf>,
    /// Number of occupied slots with at least one dirty line.
    pub dirty_blocks: usize,
}

impl Shared {
    /// Initializes the pool.
    pub fn init(nblocks: usize) -> Shared {
        Shared {
            pool: Some(Pool::new(nblocks)),
            files: HashMap::new(),
            dirty_blocks: 0,
        }
    }

    /// The pool (panics if uninitialized — construction always inits).
    pub fn pool(&self) -> &Pool {
        self.pool.as_ref().expect("pool initialized")
    }

    /// Mutable pool access.
    pub fn pool_mut(&mut self) -> &mut Pool {
        self.pool.as_mut().expect("pool initialized")
    }

    /// Per-file state, created on first touch.
    pub fn file_mut(&mut self, ino: u64) -> &mut FileBuf {
        self.files.entry(ino).or_default()
    }

    /// Looks up the pool slot buffering `(ino, iblk)`.
    pub fn slot_of(&self, ino: u64, iblk: u64) -> Option<u32> {
        self.files.get(&ino)?.index.get(iblk).copied()
    }

    /// `(capacity, free, dirty)` block counts under one lock hold — the
    /// registry gauges.
    pub fn gauges(&self) -> (usize, usize, usize) {
        (
            self.pool().capacity(),
            self.pool().free_count(),
            self.dirty_blocks,
        )
    }

    /// Lines of `LINES_PER_BLOCK` sanity (compile-time shape check).
    pub const LINES: usize = LINES_PER_BLOCK;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_mask_edges() {
        assert_eq!(range_mask(0, 0), 0);
        assert_eq!(range_mask(0, 1), 1);
        assert_eq!(range_mask(63, 1), 1);
        assert_eq!(range_mask(63, 2), 0b11);
        assert_eq!(range_mask(4032, 64), 1 << 63);
        assert_eq!(range_mask(0, 4096), FULL_MASK);
        // The paper's example: writing 0..112 B touches two lines.
        assert_eq!(range_mask(0, 112).count_ones(), 2);
    }

    #[test]
    fn covered_mask_requires_full_lines() {
        assert_eq!(covered_mask(0, 64), 1);
        assert_eq!(covered_mask(1, 64), 0, "straddles two lines, covers none");
        assert_eq!(covered_mask(0, 112), 1, "only line 0 fully covered");
        assert_eq!(covered_mask(0, 4096), FULL_MASK);
        assert_eq!(covered_mask(32, 96), 0b10, "line 1 covered");
        assert_eq!(covered_mask(100, 20), 0);
    }

    #[test]
    fn partial_lines_need_fetch() {
        // The fetch set is "touched but not fully covered".
        let touched = range_mask(0, 112);
        let covered = covered_mask(0, 112);
        assert_eq!(touched & !covered, 0b10, "second line needs fetching");
    }

    #[test]
    fn runs_iterates_consecutive_groups() {
        assert_eq!(runs(0).collect::<Vec<_>>(), vec![]);
        assert_eq!(runs(1).collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(
            runs(0b0110_1101).collect::<Vec<_>>(),
            vec![(0, 1), (2, 2), (5, 2)]
        );
        assert_eq!(runs(FULL_MASK).collect::<Vec<_>>(), vec![(0, 64)]);
        assert_eq!(runs(1 << 63).collect::<Vec<_>>(), vec![(63, 1)]);
    }

    #[test]
    fn pool_alloc_release_cycle() {
        let mut p = Pool::new(4);
        assert_eq!(p.free_count(), 4);
        let a = p.alloc_slot(1, 0, 100).unwrap();
        let b = p.alloc_slot(1, 1, 101).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free_count(), 2);
        assert_eq!(p.lrw.tail(), Some(a), "first written is LRW victim");
        assert_eq!(p.meta(b).iblk, 1);
        p.release_slot(a);
        assert_eq!(p.free_count(), 3);
        assert_eq!(p.lrw.tail(), Some(b));
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut p = Pool::new(2);
        p.alloc_slot(1, 0, 0).unwrap();
        p.alloc_slot(1, 1, 0).unwrap();
        assert!(p.alloc_slot(1, 2, 0).is_none());
    }

    #[test]
    fn block_data_is_per_slot() {
        let mut p = Pool::new(3);
        let a = p.alloc_slot(1, 0, 0).unwrap();
        let b = p.alloc_slot(1, 1, 0).unwrap();
        p.block_mut(a)[0..4].copy_from_slice(&[1, 2, 3, 4]);
        p.block_mut(b)[0..4].copy_from_slice(&[5, 6, 7, 8]);
        assert_eq!(&p.block(a)[0..4], &[1, 2, 3, 4]);
        assert_eq!(&p.block(b)[0..4], &[5, 6, 7, 8]);
    }

    #[test]
    fn shared_file_state_on_demand() {
        let mut sh = Shared::init(4);
        assert!(sh.slot_of(7, 0).is_none());
        let now = 5;
        let slot = sh.pool_mut().alloc_slot(7, 3, now).unwrap();
        sh.file_mut(7).index.insert(3, slot);
        assert_eq!(sh.slot_of(7, 3), Some(slot));
        assert_eq!(sh.slot_of(7, 4), None);
    }
}
