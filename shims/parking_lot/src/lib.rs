//! A minimal, API-compatible stand-in for the `parking_lot` crate, backed
//! by `std::sync`. The workspace vendors it so a sandboxed (offline) build
//! never needs the crates-io registry. Only the surface the workspace
//! actually uses is provided: `Mutex`, `RwLock`, `Condvar` with
//! `parking_lot`'s poison-free guard semantics.

use std::sync;
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`]. The inner `Option` is only ever `None` transiently
/// inside [`Condvar::wait`], which needs to move the std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(unpoison(self.0.lock())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// A condition variable operating on [`MutexGuard`] in place, like
/// `parking_lot`'s.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        guard.0 = Some(unpoison(self.0.wait(g)));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(unpoison(self.0.read()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(unpoison(self.0.write()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// parking_lot has no lock poisoning; a panic while holding a lock leaves
/// the data as-is. Match that by always taking the inner value.
fn unpoison<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert_eq!(*l.try_write().unwrap(), 8);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            *flag = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        while !*flag {
            cv.wait(&mut flag);
        }
        t.join().unwrap();
        let res = cv.wait_for(&mut flag, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock stays usable after a panic");
    }
}
