//! Directories: ext2-style variable-length entries stored in the directory
//! inode's data blocks.
//!
//! Entry format (byte offsets within an entry):
//!
//! ```text
//! 0..8   ino      (0 = free space)
//! 8..10  rec_len  (multiple of 4; last entry reaches the block end)
//! 10     name_len
//! 11     ftype
//! 12..   name bytes, padded to rec_len
//! ```
//!
//! Modifications journal the entry headers they touch through the caller's
//! transaction, so a crash can never leave a broken entry chain.

use fskit::{DirEntry, FileType, FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};

use crate::alloc::Allocator;
use crate::inode::InodeMem;
use crate::journal::{Journal, TxHandle};
use crate::layout::Layout;
use crate::tree;

pub use fskit::dirent::{encode_header, entry_len, parse_block, HDR};

/// Number of directory data blocks (directories always grow in whole
/// blocks).
fn dir_blocks(mem: &InodeMem) -> u64 {
    mem.size / BLOCK_SIZE as u64
}

/// Looks up `name`, returning its inode number and type.
pub fn lookup(dev: &NvmmDevice, mem: &InodeMem, name: &str) -> Result<Option<(u64, FileType)>> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let pblk = tree::lookup(dev, mem, iblk).ok_or(FsError::Corrupted("dir hole"))?;
        dev.read(Cat::Meta, Layout::block_off(pblk), &mut buf);
        for (_, e) in parse_block(&buf)? {
            if e.ino != 0 && e.name == name.as_bytes() {
                let ftype = FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?;
                return Ok(Some((e.ino, ftype)));
            }
        }
    }
    Ok(None)
}

/// Lists every live entry.
pub fn list(dev: &NvmmDevice, mem: &InodeMem) -> Result<Vec<DirEntry>> {
    let mut out = Vec::new();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let pblk = tree::lookup(dev, mem, iblk).ok_or(FsError::Corrupted("dir hole"))?;
        dev.read(Cat::Meta, Layout::block_off(pblk), &mut buf);
        for (_, e) in parse_block(&buf)? {
            if e.ino != 0 {
                out.push(DirEntry {
                    name: String::from_utf8(e.name.clone())
                        .map_err(|_| FsError::Corrupted("dirent name utf8"))?,
                    ino: e.ino,
                    ftype: FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?,
                });
            }
        }
    }
    Ok(out)
}

/// Whether the directory has no live entries.
pub fn is_empty(dev: &NvmmDevice, mem: &InodeMem) -> Result<bool> {
    Ok(list(dev, mem)?.is_empty())
}

/// Adds `name -> ino`. The caller must have verified the name is absent and
/// holds the directory inode lock; inode-core changes (size growth) ride in
/// the caller's transaction.
#[allow(clippy::too_many_arguments)]
pub fn add(
    dev: &NvmmDevice,
    journal: &Journal,
    tx: &TxHandle,
    alloc: &Allocator,
    mem: &mut InodeMem,
    name: &str,
    ino: u64,
    ftype: FileType,
) -> Result<()> {
    debug_assert!(!name.is_empty() && name.len() <= 255);
    let need = entry_len(name.len());
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let pblk = tree::lookup(dev, mem, iblk).ok_or(FsError::Corrupted("dir hole"))?;
        let base = Layout::block_off(pblk);
        dev.read(Cat::Meta, base, &mut buf);
        for (off, e) in parse_block(&buf)? {
            let (free_off, free_len, split_used) = if e.ino == 0 {
                (off, e.rec_len, false)
            } else {
                let used = entry_len(e.name.len());
                (off + used, e.rec_len - used, true)
            };
            if free_len < need {
                continue;
            }
            // Journal the headers we are about to modify: the hosting
            // entry's header and the new entry's header location.
            journal.log_range(tx, base + off as u64, HDR)?;
            journal.log_range(tx, base + free_off as u64, HDR)?;
            if split_used {
                // Shrink the used entry to its minimal length, then write
                // the new entry into its slack.
                let host = encode_header(e.ino, entry_len(e.name.len()), e.name.len(), e.ftype);
                let mut new = Vec::with_capacity(free_len);
                new.extend_from_slice(&encode_header(ino, free_len, name.len(), ftype.as_u8()));
                new.extend_from_slice(name.as_bytes());
                new.resize(free_len, 0);
                // New entry body first, host header (the split point) last.
                dev.write_persist(Cat::Meta, base + free_off as u64, &new);
                dev.sfence();
                dev.write_persist(Cat::Meta, base + off as u64, &host);
                dev.sfence();
            } else {
                // Claim the free entry; split off the remainder if it is
                // large enough to hold a future header.
                let (claim_len, rest) = if free_len - need >= HDR {
                    (need, free_len - need)
                } else {
                    (free_len, 0)
                };
                if rest > 0 {
                    let rest_hdr = encode_header(0, rest, 0, 0);
                    dev.write_persist(Cat::Meta, base + (free_off + claim_len) as u64, &rest_hdr);
                    dev.sfence();
                }
                let mut new = Vec::with_capacity(claim_len);
                new.extend_from_slice(&encode_header(ino, claim_len, name.len(), ftype.as_u8()));
                new.extend_from_slice(name.as_bytes());
                new.resize(claim_len, 0);
                dev.write_persist(Cat::Meta, base + free_off as u64, &new);
                dev.sfence();
            }
            return Ok(());
        }
    }
    // No room: append a fresh directory block.
    let pblk = alloc.alloc()?;
    let base = Layout::block_off(pblk);
    dev.zero_persist(Cat::Meta, base, BLOCK_SIZE);
    let mut block = vec![0u8; BLOCK_SIZE];
    block[0..HDR].copy_from_slice(&encode_header(ino, need, name.len(), ftype.as_u8()));
    block[HDR..HDR + name.len()].copy_from_slice(name.as_bytes());
    if BLOCK_SIZE - need >= HDR {
        block[need..need + HDR].copy_from_slice(&encode_header(0, BLOCK_SIZE - need, 0, 0));
    }
    dev.write_persist(Cat::Meta, base, &block);
    dev.sfence();
    let iblk = dir_blocks(mem);
    tree::insert(dev, alloc, mem, iblk, pblk)?;
    mem.size += BLOCK_SIZE as u64;
    mem.blocks += 1;
    Ok(())
}

/// Removes `name`. Returns the unlinked inode number and type.
pub fn remove(
    dev: &NvmmDevice,
    journal: &Journal,
    tx: &TxHandle,
    mem: &InodeMem,
    name: &str,
) -> Result<(u64, FileType)> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    for iblk in 0..dir_blocks(mem) {
        let pblk = tree::lookup(dev, mem, iblk).ok_or(FsError::Corrupted("dir hole"))?;
        let base = Layout::block_off(pblk);
        dev.read(Cat::Meta, base, &mut buf);
        let entries = parse_block(&buf)?;
        for (i, (off, e)) in entries.iter().enumerate() {
            if e.ino == 0 || e.name != name.as_bytes() {
                continue;
            }
            let ftype = FileType::from_u8(e.ftype).ok_or(FsError::Corrupted("dirent type"))?;
            if i > 0 {
                // Merge into the predecessor.
                let (poff, p) = &entries[i - 1];
                journal.log_range(tx, base + *poff as u64, HDR)?;
                let hdr = encode_header(p.ino, p.rec_len + e.rec_len, p.name.len(), p.ftype);
                dev.write_persist(Cat::Meta, base + *poff as u64, &hdr);
            } else {
                // First entry of the block: mark free.
                journal.log_range(tx, base + *off as u64, HDR)?;
                let hdr = encode_header(0, e.rec_len, 0, 0);
                dev.write_persist(Cat::Meta, base + *off as u64, &hdr);
            }
            dev.sfence();
            return Ok((e.ino, ftype));
        }
    }
    Err(FsError::NotFound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    struct Fx {
        dev: Arc<NvmmDevice>,
        journal: Journal,
        alloc: Allocator,
        mem: InodeMem,
    }

    fn setup() -> Fx {
        let blocks = 4096u64;
        let dev = NvmmDevice::new_tracked(
            SimEnv::new_virtual(CostModel::default()),
            blocks as usize * BLOCK_SIZE,
        );
        let layout = Layout::compute(blocks, 64, 128).unwrap();
        Journal::format(&dev, &layout);
        let journal = Journal::open(dev.clone(), &layout).unwrap();
        let alloc = Allocator::new_empty(&layout);
        let mem = InodeMem::new(FileType::Dir, 0);
        Fx {
            dev,
            journal,
            alloc,
            mem,
        }
    }

    impl Fx {
        fn add(&mut self, name: &str, ino: u64, ft: FileType) -> Result<()> {
            let tx = self.journal.begin().unwrap();
            let r = add(
                &self.dev,
                &self.journal,
                &tx,
                &self.alloc,
                &mut self.mem,
                name,
                ino,
                ft,
            );
            self.journal.commit(tx);
            r
        }

        fn remove(&mut self, name: &str) -> Result<(u64, FileType)> {
            let tx = self.journal.begin().unwrap();
            let r = remove(&self.dev, &self.journal, &tx, &self.mem, name);
            self.journal.commit(tx);
            r
        }
    }

    #[test]
    fn add_lookup_remove() {
        let mut fx = setup();
        fx.add("hello.txt", 10, FileType::File).unwrap();
        fx.add("sub", 11, FileType::Dir).unwrap();
        assert_eq!(
            lookup(&fx.dev, &fx.mem, "hello.txt").unwrap(),
            Some((10, FileType::File))
        );
        assert_eq!(
            lookup(&fx.dev, &fx.mem, "sub").unwrap(),
            Some((11, FileType::Dir))
        );
        assert_eq!(lookup(&fx.dev, &fx.mem, "nope").unwrap(), None);
        assert_eq!(fx.remove("hello.txt").unwrap(), (10, FileType::File));
        assert_eq!(lookup(&fx.dev, &fx.mem, "hello.txt").unwrap(), None);
        assert_eq!(
            lookup(&fx.dev, &fx.mem, "sub").unwrap(),
            Some((11, FileType::Dir))
        );
    }

    #[test]
    fn list_returns_live_entries() {
        let mut fx = setup();
        for i in 0..10u64 {
            fx.add(&format!("f{i}"), 100 + i, FileType::File).unwrap();
        }
        fx.remove("f3").unwrap();
        let names: Vec<String> = list(&fx.dev, &fx.mem)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names.len(), 9);
        assert!(!names.contains(&"f3".to_string()));
        assert!(names.contains(&"f9".to_string()));
    }

    #[test]
    fn empty_after_removing_everything() {
        let mut fx = setup();
        assert!(is_empty(&fx.dev, &fx.mem).unwrap());
        fx.add("a", 1, FileType::File).unwrap();
        fx.add("b", 2, FileType::File).unwrap();
        assert!(!is_empty(&fx.dev, &fx.mem).unwrap());
        fx.remove("a").unwrap();
        fx.remove("b").unwrap();
        assert!(is_empty(&fx.dev, &fx.mem).unwrap());
    }

    #[test]
    fn freed_space_is_reused() {
        let mut fx = setup();
        for i in 0..50u64 {
            fx.add(&format!("file-{i:03}"), i + 1, FileType::File)
                .unwrap();
        }
        let blocks_before = fx.mem.blocks;
        for i in 0..50u64 {
            fx.remove(&format!("file-{i:03}")).unwrap();
        }
        for i in 0..50u64 {
            fx.add(&format!("file2-{i:03}"), i + 100, FileType::File)
                .unwrap();
        }
        assert_eq!(
            fx.mem.blocks, blocks_before,
            "no growth when space was freed"
        );
        assert_eq!(list(&fx.dev, &fx.mem).unwrap().len(), 50);
    }

    #[test]
    fn grows_across_blocks() {
        let mut fx = setup();
        // Long names so a block holds few entries.
        let name = "x".repeat(200);
        let per_block = BLOCK_SIZE / entry_len(200);
        let n = per_block * 3 + 1;
        for i in 0..n {
            fx.add(&format!("{name}{i:04}"), i as u64 + 1, FileType::File)
                .unwrap();
        }
        assert!(fx.mem.blocks >= 3);
        assert_eq!(list(&fx.dev, &fx.mem).unwrap().len(), n);
        // Every entry findable.
        assert_eq!(
            lookup(&fx.dev, &fx.mem, &format!("{name}{:04}", n - 1)).unwrap(),
            Some((n as u64, FileType::File))
        );
    }

    #[test]
    fn duplicate_names_are_callers_problem_but_lookup_finds_first() {
        let mut fx = setup();
        fx.add("dup", 1, FileType::File).unwrap();
        fx.add("dup", 2, FileType::File).unwrap();
        let (ino, _) = lookup(&fx.dev, &fx.mem, "dup").unwrap().unwrap();
        assert_eq!(ino, 1);
    }

    #[test]
    fn crash_during_add_rolls_back_chain() {
        let mut fx = setup();
        fx.add("keep", 5, FileType::File).unwrap();
        // Uncommitted add, then crash.
        let tx = fx.journal.begin().unwrap();
        add(
            &fx.dev,
            &fx.journal,
            &tx,
            &fx.alloc,
            &mut fx.mem,
            "lost",
            6,
            FileType::File,
        )
        .unwrap();
        drop(tx);
        fx.dev.crash();
        let layout = Layout::compute(4096, 64, 128).unwrap();
        Journal::recover(&fx.dev, &layout).unwrap();
        // Chain is intact and the uncommitted entry is gone.
        assert_eq!(
            lookup(&fx.dev, &fx.mem, "keep").unwrap(),
            Some((5, FileType::File))
        );
        assert_eq!(lookup(&fx.dev, &fx.mem, "lost").unwrap(), None);
        let entries = list(&fx.dev, &fx.mem).unwrap();
        assert_eq!(entries.len(), 1);
    }
}
