//! The shared in-memory reference model.
//!
//! One model, three consumers, no drifting copies:
//!
//! - the **proptest** model tests (`tests/proptest_model.rs`) drive the
//!   byte-level API (`write`/`read`/`truncate`) against live mounts;
//! - the **fuzzer** ([`crate::fuzz`]) replays whole [`Op`] scripts through
//!   [`RefModel::apply`] and differentially compares the result against
//!   pmfs, hinfs and extfs with [`RefModel::diff`];
//! - the scripted **differential** tests reuse the same entry points.
//!
//! [`RefModel::apply`] mirrors the harness's `exec_op` semantics exactly:
//! data ops open *without* `CREATE`, so touching a missing file is
//! `NotFound`; `Create` on a live file is an `O_CREAT` open without
//! truncation (`Ok`, content kept); rename-to-self of a live file is
//! `Ok` and a no-op, like the real namespaces.
//!
//! [`ModelBug`] plants a deliberate divergence for the fuzzer's negative
//! test: the soak's self-test proves a buggy model is caught by the
//! differential and shrunk to a minimal reproducer within budget.

use std::collections::{BTreeMap, BTreeSet};

use fskit::{FileSystem, FsError, OpenFlags};

use crate::script::{dir_path, file_path, Op, MAX_DIRS, MAX_FILES};

/// A deliberate model defect, used only by the fuzzer's negative test
/// (`fuzz_fs --self-test`): the differential must catch the divergence
/// and shrink it to a minimal reproducer within the iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelBug {
    /// A truncate that *extends* a file past `threshold` bytes silently
    /// keeps the old size — the classic forgotten-zero-fill bug. Minimal
    /// reproducer: `create f0; truncate f0 <size>` (two ops).
    TruncateExtendLost {
        /// Extension boundary in bytes above which the bug fires.
        threshold: u64,
    },
}

/// In-memory reference state: file slot → contents, plus the live
/// directory slots. `BTreeMap`/`BTreeSet` keep every walk deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefModel {
    files: BTreeMap<u8, Vec<u8>>,
    dirs: BTreeSet<u8>,
    bug: Option<ModelBug>,
}

impl RefModel {
    /// An empty model (no files, no directories).
    pub fn new() -> RefModel {
        RefModel::default()
    }

    /// An empty model with a planted defect.
    pub fn with_bug(bug: ModelBug) -> RefModel {
        RefModel {
            bug: Some(bug),
            ..RefModel::default()
        }
    }

    /// Whether file slot `file` currently exists.
    pub fn file_live(&self, file: u8) -> bool {
        self.files.contains_key(&file)
    }

    /// Whether directory slot `dir` currently exists.
    pub fn dir_live(&self, dir: u8) -> bool {
        self.dirs.contains(&dir)
    }

    /// Current size of file slot `file`, `None` when it does not exist.
    pub fn size(&self, file: u8) -> Option<u64> {
        self.files.get(&file).map(|v| v.len() as u64)
    }

    /// Current contents of file slot `file`.
    pub fn content(&self, file: u8) -> Option<&[u8]> {
        self.files.get(&file).map(|v| v.as_slice())
    }

    /// Ensures file slot `file` exists (the `O_CREAT` half of `Create`;
    /// existing content is kept, like an open without truncation).
    pub fn create(&mut self, file: u8) {
        self.files.entry(file).or_default();
    }

    /// Byte-level positional write, creating the slot and zero-extending
    /// as needed (the proptest tests pre-create their files, so the
    /// or-default never fires there).
    pub fn write(&mut self, file: u8, off: usize, data: &[u8]) {
        let img = self.files.entry(file).or_default();
        if img.len() < off + data.len() {
            img.resize(off + data.len(), 0);
        }
        img[off..off + data.len()].copy_from_slice(data);
    }

    /// Byte-level read, clamped to the current size (missing slot reads
    /// as empty, matching a zero-length image).
    pub fn read(&self, file: u8, off: usize, len: usize) -> Vec<u8> {
        let img = self.files.get(&file).map(|v| v.as_slice()).unwrap_or(&[]);
        if off >= img.len() {
            return Vec::new();
        }
        img[off..(off + len).min(img.len())].to_vec()
    }

    /// Byte-level truncate (shrink or zero-extend), creating the slot if
    /// needed. This is where a planted [`ModelBug`] diverges.
    pub fn truncate(&mut self, file: u8, size: usize) {
        let img = self.files.entry(file).or_default();
        if let Some(ModelBug::TruncateExtendLost { threshold }) = self.bug {
            if size as u64 > threshold && size > img.len() {
                return; // the bug: extension silently dropped
            }
        }
        img.resize(size, 0);
    }

    /// Applies one scripted operation with `exec_op` semantics, returning
    /// the error the real file systems are expected to return. Fuzzer and
    /// differential tests compare only the `Ok`/`Err` class per op (plus
    /// the full state at the end), so the exact variant here is advisory.
    pub fn apply(&mut self, op: &Op) -> Result<(), FsError> {
        match *op {
            Op::Create { file } => {
                self.create(file);
                Ok(())
            }
            Op::Write {
                file,
                off,
                len,
                fill,
            } => {
                if !self.file_live(file) {
                    return Err(FsError::NotFound);
                }
                self.write(file, off as usize, &vec![fill; len]);
                Ok(())
            }
            Op::Append { file, len, fill } => {
                if !self.file_live(file) {
                    return Err(FsError::NotFound);
                }
                let end = self.size(file).unwrap_or(0) as usize;
                self.write(file, end, &vec![fill; len]);
                Ok(())
            }
            Op::Fsync { file } => {
                if !self.file_live(file) {
                    return Err(FsError::NotFound);
                }
                Ok(())
            }
            Op::Truncate { file, size } => {
                if !self.file_live(file) {
                    return Err(FsError::NotFound);
                }
                self.truncate(file, size as usize);
                Ok(())
            }
            Op::Unlink { file } => {
                if self.files.remove(&file).is_none() {
                    return Err(FsError::NotFound);
                }
                Ok(())
            }
            Op::Rename { from, to } => {
                if !self.file_live(from) {
                    return Err(FsError::NotFound);
                }
                if from != to {
                    let img = self.files.remove(&from).expect("live");
                    self.files.insert(to, img);
                }
                Ok(())
            }
            Op::Mkdir { dir } => {
                if !self.dirs.insert(dir) {
                    return Err(FsError::AlreadyExists);
                }
                Ok(())
            }
            Op::Rmdir { dir } => {
                if !self.dirs.remove(&dir) {
                    return Err(FsError::NotFound);
                }
                Ok(())
            }
            Op::Sync | Op::Tick => Ok(()),
        }
    }

    /// Full-state differential against a live (non-crashed) mount: every
    /// file slot's existence, size and bytes, every directory slot's
    /// existence. Returns one human-readable line per divergence, prefixed
    /// with `label`.
    pub fn diff(&self, fs: &dyn FileSystem, label: &str) -> Vec<String> {
        let mut out = Vec::new();
        for file in 0..MAX_FILES {
            let path = file_path(file);
            match (self.content(file), fs.open(&path, OpenFlags::READ)) {
                (None, Err(FsError::NotFound)) => {}
                (None, Err(e)) => {
                    out.push(format!("{label}: {path}: expected NotFound, got {e:?}"))
                }
                (None, Ok(fd)) => {
                    out.push(format!("{label}: {path}: exists but model says unlinked"));
                    let _ = fs.close(fd);
                }
                (Some(_), Err(e)) => out.push(format!(
                    "{label}: {path}: model live but open failed: {e:?}"
                )),
                (Some(want), Ok(fd)) => {
                    match fs.fstat(fd) {
                        Err(e) => out.push(format!("{label}: {path}: fstat failed: {e:?}")),
                        Ok(st) if st.size != want.len() as u64 => out.push(format!(
                            "{label}: {path}: size {} != model {}",
                            st.size,
                            want.len()
                        )),
                        Ok(_) => {
                            let mut got = vec![0u8; want.len()];
                            match fs.read(fd, 0, &mut got) {
                                Err(e) => out.push(format!("{label}: {path}: read failed: {e:?}")),
                                Ok(n) if n != want.len() => out.push(format!(
                                    "{label}: {path}: short read {n} of {}",
                                    want.len()
                                )),
                                Ok(_) => {
                                    if let Some(o) =
                                        got.iter().zip(want.iter()).position(|(g, w)| g != w)
                                    {
                                        out.push(format!(
                                            "{label}: {path}: byte {o} = {:#04x} != model {:#04x}",
                                            got[o], want[o]
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    let _ = fs.close(fd);
                }
            }
        }
        for dir in 0..MAX_DIRS {
            let path = dir_path(dir);
            match (self.dir_live(dir), fs.stat(&path)) {
                (true, Ok(_)) | (false, Err(FsError::NotFound)) => {}
                (true, Err(e)) => out.push(format!(
                    "{label}: {path}: model live but stat failed: {e:?}"
                )),
                (false, Ok(_)) => {
                    out.push(format!("{label}: {path}: exists but model says removed"))
                }
                (false, Err(e)) => {
                    out.push(format!("{label}: {path}: expected NotFound, got {e:?}"))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_mirrors_exec_op_semantics() {
        let mut m = RefModel::new();
        // Data ops on a missing file are NotFound (no CREATE on open).
        assert_eq!(
            m.apply(&Op::Write {
                file: 0,
                off: 0,
                len: 4,
                fill: 1
            }),
            Err(FsError::NotFound)
        );
        assert_eq!(m.apply(&Op::Fsync { file: 0 }), Err(FsError::NotFound));
        assert_eq!(m.apply(&Op::Create { file: 0 }), Ok(()));
        assert_eq!(
            m.apply(&Op::Append {
                file: 0,
                len: 3,
                fill: 7
            }),
            Ok(())
        );
        // Create on a live file keeps content (no O_TRUNC).
        assert_eq!(m.apply(&Op::Create { file: 0 }), Ok(()));
        assert_eq!(m.content(0), Some(&[7u8, 7, 7][..]));
        // Rename-to-self of a live file is Ok and a no-op.
        assert_eq!(m.apply(&Op::Rename { from: 0, to: 0 }), Ok(()));
        assert_eq!(m.size(0), Some(3));
        // Rename moves content and replaces the destination.
        assert_eq!(m.apply(&Op::Create { file: 1 }), Ok(()));
        assert_eq!(m.apply(&Op::Rename { from: 0, to: 1 }), Ok(()));
        assert!(!m.file_live(0));
        assert_eq!(m.content(1), Some(&[7u8, 7, 7][..]));
        assert_eq!(
            m.apply(&Op::Rename { from: 0, to: 1 }),
            Err(FsError::NotFound)
        );
        // Directory lifecycle.
        assert_eq!(m.apply(&Op::Rmdir { dir: 0 }), Err(FsError::NotFound));
        assert_eq!(m.apply(&Op::Mkdir { dir: 0 }), Ok(()));
        assert_eq!(m.apply(&Op::Mkdir { dir: 0 }), Err(FsError::AlreadyExists));
        assert_eq!(m.apply(&Op::Rmdir { dir: 0 }), Ok(()));
    }

    #[test]
    fn write_truncate_read_bytes() {
        let mut m = RefModel::new();
        m.create(2);
        m.write(2, 4, &[9, 9]);
        assert_eq!(m.size(2), Some(6));
        assert_eq!(m.read(2, 3, 3), vec![0, 9, 9]);
        assert_eq!(m.read(2, 6, 10), Vec::<u8>::new());
        m.truncate(2, 5);
        assert_eq!(m.content(2), Some(&[0u8, 0, 0, 0, 9][..]));
        m.truncate(2, 8);
        assert_eq!(m.size(2), Some(8));
        assert_eq!(m.read(2, 4, 4), vec![9, 0, 0, 0]);
    }

    #[test]
    fn planted_bug_drops_large_extensions_only() {
        let mut m = RefModel::with_bug(ModelBug::TruncateExtendLost { threshold: 100 });
        m.create(0);
        m.truncate(0, 80); // under the threshold: normal
        assert_eq!(m.size(0), Some(80));
        m.truncate(0, 200); // extension past the threshold: lost
        assert_eq!(m.size(0), Some(80));
        m.truncate(0, 10); // shrink always works
        assert_eq!(m.size(0), Some(10));
        // The same ops on a healthy model end at 200 then 10.
        let mut ok = RefModel::new();
        ok.create(0);
        ok.truncate(0, 80);
        ok.truncate(0, 200);
        assert_eq!(ok.size(0), Some(200));
    }
}
