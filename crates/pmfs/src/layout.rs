//! On-NVMM layout: region map and superblock.
//!
//! ```text
//! block 0                superblock
//! blocks 1 .. 1+J        journal (header block + 64 B log entries)
//! blocks 1+J .. +I       inode table (256 B slots)
//! blocks .. +B           allocator image (bitmap persisted on clean unmount)
//! blocks .. end          data area (file data, tree nodes, directories)
//! ```

use fskit::{FsError, Result};
use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};

/// Magic number identifying a formatted device ("PMFSRS16").
pub const MAGIC: u64 = 0x504d_4653_5253_3136;

/// On-media format version.
pub const VERSION: u64 = 1;

/// Size of one inode slot in bytes.
pub const INODE_SLOT: usize = 256;

/// Inode slots per table block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SLOT) as u64;

/// The root directory's inode number. Inode 0 is never used so that a zero
/// pointer always means "absent".
pub const ROOT_INO: u64 = 1;

/// Region map of a formatted device. Derived from the superblock; all units
/// are 4 KiB blocks unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total device blocks.
    pub total_blocks: u64,
    /// First journal block (the journal header).
    pub journal_start: u64,
    /// Journal length in blocks, including the header block.
    pub journal_blocks: u64,
    /// First inode table block.
    pub itable_start: u64,
    /// Inode table length in blocks.
    pub itable_blocks: u64,
    /// Number of inode slots.
    pub inode_count: u64,
    /// First block of the persisted allocator image.
    pub bitmap_start: u64,
    /// Allocator image length in blocks.
    pub bitmap_blocks: u64,
    /// First data block.
    pub data_start: u64,
}

impl Layout {
    /// Computes a layout for a device of `total_blocks` blocks with the
    /// given journal size and inode count.
    pub fn compute(total_blocks: u64, journal_blocks: u64, inode_count: u64) -> Result<Layout> {
        let itable_blocks = inode_count.div_ceil(INODES_PER_BLOCK);
        // One bit per device block.
        let bitmap_blocks = total_blocks.div_ceil(8 * BLOCK_SIZE as u64);
        let journal_start = 1;
        let itable_start = journal_start + journal_blocks;
        let bitmap_start = itable_start + itable_blocks;
        let data_start = bitmap_start + bitmap_blocks;
        if data_start + 8 > total_blocks {
            return Err(FsError::InvalidArgument("device too small for layout"));
        }
        Ok(Layout {
            total_blocks,
            journal_start,
            journal_blocks,
            itable_start,
            itable_blocks,
            inode_count,
            bitmap_start,
            bitmap_blocks,
            data_start,
        })
    }

    /// Byte offset of the start of block `b`.
    pub fn block_off(b: u64) -> u64 {
        b * BLOCK_SIZE as u64
    }

    /// Byte offset of inode slot `ino`.
    pub fn inode_off(&self, ino: u64) -> u64 {
        debug_assert!(ino < self.inode_count, "inode {ino} out of range");
        Self::block_off(self.itable_start) + ino * INODE_SLOT as u64
    }

    /// Number of data-area blocks.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }
}

/// Superblock field offsets within block 0 (all little-endian `u64`s).
mod sbo {
    pub const MAGIC: u64 = 0;
    pub const VERSION: u64 = 8;
    pub const TOTAL_BLOCKS: u64 = 16;
    pub const JOURNAL_START: u64 = 24;
    pub const JOURNAL_BLOCKS: u64 = 32;
    pub const ITABLE_START: u64 = 40;
    pub const ITABLE_BLOCKS: u64 = 48;
    pub const INODE_COUNT: u64 = 56;
    pub const BITMAP_START: u64 = 64;
    pub const BITMAP_BLOCKS: u64 = 72;
    pub const DATA_START: u64 = 80;
    /// 1 if the file system was unmounted cleanly (allocator image valid).
    pub const CLEAN: u64 = 88;
}

/// Writes a freshly formatted superblock.
pub fn write_superblock(dev: &NvmmDevice, l: &Layout) {
    let mut block = [0u8; BLOCK_SIZE];
    let mut put = |off: u64, v: u64| {
        block[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
    };
    put(sbo::MAGIC, MAGIC);
    put(sbo::VERSION, VERSION);
    put(sbo::TOTAL_BLOCKS, l.total_blocks);
    put(sbo::JOURNAL_START, l.journal_start);
    put(sbo::JOURNAL_BLOCKS, l.journal_blocks);
    put(sbo::ITABLE_START, l.itable_start);
    put(sbo::ITABLE_BLOCKS, l.itable_blocks);
    put(sbo::INODE_COUNT, l.inode_count);
    put(sbo::BITMAP_START, l.bitmap_start);
    put(sbo::BITMAP_BLOCKS, l.bitmap_blocks);
    put(sbo::DATA_START, l.data_start);
    put(sbo::CLEAN, 1);
    dev.write_persist(Cat::Meta, 0, &block);
    dev.sfence();
}

/// Reads and validates the superblock, returning the layout and the clean
/// flag.
pub fn read_superblock(dev: &NvmmDevice) -> Result<(Layout, bool)> {
    let get = |off: u64| dev.read_u64(Cat::Meta, off);
    if get(sbo::MAGIC) != MAGIC {
        return Err(FsError::Corrupted("superblock magic"));
    }
    if get(sbo::VERSION) != VERSION {
        return Err(FsError::Corrupted("superblock version"));
    }
    let layout = Layout {
        total_blocks: get(sbo::TOTAL_BLOCKS),
        journal_start: get(sbo::JOURNAL_START),
        journal_blocks: get(sbo::JOURNAL_BLOCKS),
        itable_start: get(sbo::ITABLE_START),
        itable_blocks: get(sbo::ITABLE_BLOCKS),
        inode_count: get(sbo::INODE_COUNT),
        bitmap_start: get(sbo::BITMAP_START),
        bitmap_blocks: get(sbo::BITMAP_BLOCKS),
        data_start: get(sbo::DATA_START),
    };
    if Layout::block_off(layout.total_blocks) != dev.len() as u64 {
        return Err(FsError::Corrupted("superblock size mismatch"));
    }
    if layout.data_start >= layout.total_blocks {
        return Err(FsError::Corrupted("superblock layout"));
    }
    let clean = get(sbo::CLEAN) == 1;
    Ok((layout, clean))
}

/// Persists the clean-unmount flag (8-byte atomic update).
pub fn set_clean(dev: &NvmmDevice, clean: bool) {
    dev.write_u64_persist(Cat::Meta, sbo::CLEAN, clean as u64);
    dev.sfence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, SimEnv};
    use std::sync::Arc;

    fn dev(blocks: u64) -> Arc<NvmmDevice> {
        NvmmDevice::new_tracked(
            SimEnv::new_virtual(CostModel::default()),
            (blocks as usize) * BLOCK_SIZE,
        )
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = Layout::compute(4096, 256, 1024).unwrap();
        assert_eq!(l.journal_start, 1);
        assert!(l.itable_start >= l.journal_start + l.journal_blocks);
        assert!(l.bitmap_start >= l.itable_start + l.itable_blocks);
        assert!(l.data_start >= l.bitmap_start + l.bitmap_blocks);
        assert!(l.data_start < l.total_blocks);
        assert_eq!(l.data_blocks(), l.total_blocks - l.data_start);
    }

    #[test]
    fn layout_rejects_tiny_devices() {
        assert!(Layout::compute(10, 8, 1024).is_err());
    }

    #[test]
    fn superblock_roundtrip() {
        let d = dev(4096);
        let l = Layout::compute(4096, 256, 1024).unwrap();
        write_superblock(&d, &l);
        let (got, clean) = read_superblock(&d).unwrap();
        assert_eq!(got, l);
        assert!(clean);
    }

    #[test]
    fn superblock_survives_crash() {
        let d = dev(4096);
        let l = Layout::compute(4096, 256, 1024).unwrap();
        write_superblock(&d, &l);
        d.crash();
        let (got, _) = read_superblock(&d).unwrap();
        assert_eq!(got, l);
    }

    #[test]
    fn clean_flag_toggles() {
        let d = dev(4096);
        let l = Layout::compute(4096, 256, 1024).unwrap();
        write_superblock(&d, &l);
        set_clean(&d, false);
        let (_, clean) = read_superblock(&d).unwrap();
        assert!(!clean);
        set_clean(&d, true);
        let (_, clean) = read_superblock(&d).unwrap();
        assert!(clean);
    }

    #[test]
    fn unformatted_device_is_rejected() {
        let d = dev(4096);
        assert_eq!(
            read_superblock(&d),
            Err(FsError::Corrupted("superblock magic"))
        );
    }

    #[test]
    fn inode_offsets_within_table() {
        let l = Layout::compute(4096, 256, 1024).unwrap();
        let first = l.inode_off(0);
        let last = l.inode_off(l.inode_count - 1);
        assert_eq!(first, Layout::block_off(l.itable_start));
        assert!(last + INODE_SLOT as u64 <= Layout::block_off(l.itable_start + l.itable_blocks));
    }
}
