//! NVMMBD: the RAMDISK-like NVMM block device of the paper's baseline
//! comparison (§5.1).
//!
//! The paper modifies Linux's `brd` RAM-disk driver so that traditional
//! block-based file systems (ext2/ext4) can run on emulated NVMM. Every
//! request through the block interface pays the *generic block layer* cost
//! (request setup, queueing, driver entry — `CostModel::block_layer_ns`),
//! and writes additionally pay the NVMM persist latency, because a brd
//! "disk write" is a memcpy into the NVMM region.
//!
//! EXT4-DAX bypasses this interface for file data and reaches the backing
//! byte-addressable device directly via [`Nvmmbd::byte_device`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nvmm::{Cat, NvmmDevice, BLOCK_SIZE};

/// A block-device view over an emulated NVMM region.
#[derive(Debug)]
pub struct Nvmmbd {
    dev: Arc<NvmmDevice>,
    num_blocks: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
}

impl Nvmmbd {
    /// Wraps an NVMM device as a block device. The device length must be a
    /// whole number of 4 KiB blocks.
    pub fn new(dev: Arc<NvmmDevice>) -> Nvmmbd {
        assert_eq!(dev.len() % BLOCK_SIZE, 0, "device not block-aligned");
        let num_blocks = (dev.len() / BLOCK_SIZE) as u64;
        Nvmmbd {
            dev,
            num_blocks,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// Number of 4 KiB blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// The backing byte-addressable device (the DAX escape hatch).
    pub fn byte_device(&self) -> &Arc<NvmmDevice> {
        &self.dev
    }

    fn check(&self, blk: u64) {
        assert!(blk < self.num_blocks, "block {blk} out of range");
    }

    /// Reads one block through the block layer into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `blk` is out of range or `buf` is not one block long.
    pub fn read_block(&self, cat: Cat, blk: u64, buf: &mut [u8]) {
        self.check(blk);
        assert_eq!(buf.len(), BLOCK_SIZE);
        self.reads.fetch_add(1, Ordering::Relaxed);
        let env = self.dev.env();
        env.charge(Cat::BlockLayer, env.cost().block_layer_ns);
        self.dev.read(cat, blk * BLOCK_SIZE as u64, buf);
    }

    /// Writes one block through the block layer. A brd write lands in NVMM,
    /// so it is durable when the request completes (the driver's memcpy
    /// plus the NVMM persist latency).
    ///
    /// # Panics
    ///
    /// Panics if `blk` is out of range or `data` is not one block long.
    pub fn write_block(&self, cat: Cat, blk: u64, data: &[u8]) {
        self.check(blk);
        assert_eq!(data.len(), BLOCK_SIZE);
        self.writes.fetch_add(1, Ordering::Relaxed);
        let env = self.dev.env();
        env.charge(Cat::BlockLayer, env.cost().block_layer_ns);
        self.dev.write_persist(cat, blk * BLOCK_SIZE as u64, data);
    }

    /// Issues a write barrier (REQ_FLUSH equivalent).
    pub fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.dev.sfence();
    }

    /// `(reads, writes, flushes)` request counters.
    pub fn request_counts(&self) -> (u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.flushes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{ledger, CostModel, SimEnv};

    fn bd() -> Nvmmbd {
        let env = SimEnv::new_virtual(CostModel::default());
        Nvmmbd::new(NvmmDevice::new_tracked(env, 256 * BLOCK_SIZE))
    }

    #[test]
    fn block_roundtrip() {
        let bd = bd();
        let data = vec![7u8; BLOCK_SIZE];
        bd.write_block(Cat::UserWrite, 3, &data);
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::UserRead, 3, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(bd.request_counts(), (1, 1, 0));
    }

    #[test]
    fn requests_pay_block_layer_cost() {
        let bd = bd();
        let env = bd.byte_device().env().clone();
        ledger::reset();
        env.set_now(0);
        let data = vec![0u8; BLOCK_SIZE];
        bd.write_block(Cat::Writeback, 0, &data);
        let snap = ledger::snapshot();
        assert_eq!(snap.get(Cat::BlockLayer), env.cost().block_layer_ns);
        // The write also pays the full NVMM persist latency for 64 lines.
        assert!(snap.get(Cat::Writeback) >= env.cost().nvmm_persist_ns(64));
        // A read pays the block layer but no NVMM write latency.
        ledger::reset();
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::Fetch, 0, &mut buf);
        let snap = ledger::snapshot();
        assert_eq!(snap.get(Cat::BlockLayer), env.cost().block_layer_ns);
        assert_eq!(
            snap.get(Cat::Fetch),
            env.cost().dram_copy_ns(BLOCK_SIZE),
            "reads run at DRAM speed"
        );
    }

    #[test]
    fn writes_are_durable() {
        let bd = bd();
        let data = vec![9u8; BLOCK_SIZE];
        bd.write_block(Cat::UserWrite, 5, &data);
        bd.byte_device().crash();
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::UserRead, 5, &mut buf);
        assert_eq!(buf, data, "block writes persist like brd-on-NVMM");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let bd = bd();
        let mut buf = vec![0u8; BLOCK_SIZE];
        bd.read_block(Cat::UserRead, 256, &mut buf);
    }
}
