//! Observability tour: run a postmark-style workload on HiNFS with the
//! `obsv` layer fully enabled, then dump everything it captured — the
//! Prometheus-style exposition, per-op latency percentiles, the slowest
//! operations, and the tail of the structured trace ring (watermark
//! crossings, writeback reclaim passes, BBM flips, journal commits).
//!
//! ```text
//! cargo run --example obsv_dump [-- --json] [-- --contention]
//! ```
//!
//! With `--json` the trace-ring section is emitted as JSONL (one
//! `TraceRecord::to_json` object per line, the same exporter the ring
//! itself provides) instead of the human-readable digest, so the event
//! stream can be piped straight into `jq`. With `--contention` the
//! lock-contention and stall profile is printed too: the top sites by
//! wait time and each site's per-op wait/hold breakdown.

use fskit::OpenFlags;
use obsv::{row_label, OpKind, RegistrySnapshot, ALL_PHASES};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::postmark::{Postmark, PostmarkParams};
use workloads::runner::{Actor, Ctx, RunLimit, Runner};
use workloads::setups::{build, SystemConfig, SystemKind};

/// An actor that alternates between two I/O patterns on one block so the
/// Buffer Benefit Model keeps changing its mind: a sync-heavy phase (one
/// small write per fsync — eager-persistent territory) and a batch phase
/// (many overwrites per fsync — buffering clearly wins). Each phase
/// boundary produces Lazy <-> Eager flips in the trace.
struct FsyncHammer {
    fd: Option<fskit::Fd>,
    n: u64,
}

impl Actor for FsyncHammer {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> fskit::Result<bool> {
        if self.fd.is_none() {
            self.fd = Some(ctx.open("/hammer.log", OpenFlags::RDWR | OpenFlags::CREATE)?);
        }
        let fd = self.fd.unwrap();
        if (self.n / 64).is_multiple_of(2) {
            // Sync-heavy: one cacheline, then fsync.
            ctx.write(fd, 0, &[0xAB; 64])?;
        } else {
            // Batch: overwrite one cacheline many times before the fsync,
            // so DRAM coalescing absorbs 16 writes into 1 flush.
            for _ in 0..16 {
                ctx.write(fd, 0, &[0xCD; 64])?;
            }
        }
        ctx.fsync(fd)?;
        self.n += 1;
        Ok(true)
    }
}

fn print_phase(name: &str, d: &RegistrySnapshot) {
    println!("--- phase `{name}` registry delta ---");
    for key in [
        "hinfs_buffer_hits",
        "hinfs_buffer_misses",
        "hinfs_lazy_writes",
        "hinfs_eager_writes",
        "hinfs_sync_writes",
        "hinfs_writeback_lines",
        "hinfs_foreground_stalls",
        "hinfs_bbm_evals",
        "pmfs_journal_commits",
        "nvmm_bytes_written",
        "nvmm_bytes_read",
    ] {
        println!("  {key:<28} {}", d.counter(key));
    }
    println!();
}

/// Prints the contention profile: top sites by wait time, then each
/// touched site's Site x OpKind wait/hold breakdown.
fn print_contention(snap: &obsv::ContentionSnapshot) {
    println!("--- lock contention: top sites by wait ---");
    println!(
        "{:<20} {:>12} {:>10} {:>14} {:>14}",
        "site", "acquisitions", "contended", "wait_ns", "hold_ns"
    );
    for site in snap.top_by_wait(10) {
        println!(
            "{:<20} {:>12} {:>10} {:>14} {:>14}",
            site.site.label(),
            site.acquisitions,
            site.contended,
            site.wait.sum(),
            site.hold.sum()
        );
    }
    println!();
    println!("--- contention by op (wait/hold ns) ---");
    for site in snap.touched() {
        let mut cells = Vec::new();
        for row in 0..obsv::SPAN_ROWS {
            let (w, h) = (site.wait_by_op[row], site.hold_by_op[row]);
            if w > 0 || h > 0 {
                cells.push(format!(
                    "{}={}/{}",
                    obsv::ContentionSnapshot::op_label(row),
                    w,
                    h
                ));
            }
        }
        if !cells.is_empty() {
            println!("  {:<20} {}", site.site.label(), cells.join("  "));
        }
    }
    println!();
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let contention = std::env::args().any(|a| a == "--contention");
    // A deliberately tiny DRAM buffer (1 MiB on a 128 MiB device) so the
    // postmark churn crosses the writeback watermarks and forces reclaim.
    let cfg = SystemConfig {
        buffer_bytes: 1 << 20,
        obsv: workloads::ObsvOptions::all(),
        ..SystemConfig::small()
    };
    let sys = build(SystemKind::Hinfs, &cfg).expect("build hinfs");
    let obs = sys.obs.clone().expect("hinfs has an obs bundle");
    println!(
        "mounted {} with a {} KiB write buffer; timing + tracing on\n",
        sys.kind.label(),
        cfg.buffer_bytes >> 10
    );

    // Phase 1: populate a postmark file pool.
    let before = sys.registry.snapshot();
    let spec = FilesetSpec::new("/mail", 400, 20, 8 << 10);
    let set = Fileset::populate(&*sys.fs, spec, 11).expect("populate");
    print_phase("populate", &sys.registry.snapshot().since(&before));

    // Phase 2: postmark transactions plus the fsync hammer.
    let runner = Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .with_registry(sys.registry.clone());
    let actors: Vec<Box<dyn Actor>> = vec![
        Box::new(Postmark::new(set.clone(), PostmarkParams::default())),
        Box::new(Postmark::new(set, PostmarkParams::default())),
        Box::new(FsyncHammer { fd: None, n: 0 }),
    ];
    // A duration limit (rather than a step count) keeps every actor busy
    // up to the same simulated instant, so each event kind keeps firing
    // until the end of the run.
    let span_base = sys.dev.spans().snapshot();
    let report = runner.run(actors, RunLimit::duration_ms(30), 42);
    let spans = sys.dev.spans().snapshot().since(&span_base);
    let delta = report.registry.clone().expect("registry attached");
    print_phase("transactions", &delta);
    println!(
        "transactions: {} ops in {} ms simulated ({:.0} ops/s)\n",
        report.total_ops(),
        report.elapsed_ns / 1_000_000,
        report.throughput()
    );

    // Per-op latency percentiles out of the log-bucketed histograms. The
    // p50/p95/p99 columns use the interpolated `quantile()` (the same
    // numbers `--bench-json` serializes); p90/p999 come from the coarser
    // `percentiles()` helper.
    println!("--- per-op latency (ns) ---");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "op", "count", "p50", "p90", "p95", "p99", "p999", "mean", "max"
    );
    for op in [OpKind::Read, OpKind::Write, OpKind::Fsync] {
        let h = obs.op_histo(op).snapshot();
        let (_, p90, _, p999) = h.percentiles();
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10.0} {:>10}",
            op.label(),
            h.count(),
            h.quantile(0.50),
            p90,
            h.quantile(0.95),
            h.quantile(0.99),
            p999,
            h.mean(),
            h.max()
        );
    }
    println!();

    // The slowest individual operations the run produced.
    println!("--- slowest ops ---");
    for s in obs.slowest().into_iter().take(8) {
        println!(
            "  {:>10} ns  {:<8} at t={} us",
            s.ns,
            s.op.label(),
            s.at_ns / 1000
        );
    }
    println!();

    // Flight-recorder exemplars: the slowest ops again, but each with its
    // full anatomy — phase split, lock waits, fence count, trace-ring seq
    // window — instead of a bare duration (`ObsvOptions::all()` arms the
    // recorder).
    let fsnap = obs.flight().snapshot();
    println!(
        "--- flight exemplars ({} ops recorded) ---",
        fsnap.recorded()
    );
    let mut exemplars: Vec<&obsv::FlightRecord> = fsnap.all();
    exemplars.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    for r in exemplars.into_iter().take(6) {
        let phases: Vec<String> = r
            .top_phases(3)
            .into_iter()
            .map(|(p, ns)| format!("{}={ns}", p.label()))
            .collect();
        let waits: Vec<String> = r
            .top_waits(2)
            .into_iter()
            .map(|(s, ns)| format!("{}={ns}", s.label()))
            .collect();
        println!(
            "  {:>10} ns  {:<8} fences={} stalls={} seq [{}, {}]  phases: {}{}{}",
            r.total_ns,
            r.op.label(),
            r.fences,
            r.stall_events,
            r.seq_start,
            r.seq_end,
            phases.join(" "),
            if waits.is_empty() { "" } else { "  waits: " },
            waits.join(" ")
        );
    }
    println!();

    // Span phase matrix: where each op's virtual time actually went during
    // the transaction phase. Rows are ops (plus the detached background
    // row), columns are phases; only non-empty cells print.
    println!("--- span phase matrix (ns, transaction phase only) ---");
    for (row, row_ns) in spans.ns.iter().enumerate() {
        let total = spans.row_total(row);
        if total == 0 {
            continue;
        }
        print!("  {:<10} {:>12} total |", row_label(row), total);
        for (p, phase) in ALL_PHASES.iter().enumerate() {
            if spans.calls[row][p] > 0 {
                print!(" {}={}", phase.label(), row_ns[p]);
            }
        }
        println!();
    }
    println!();

    // Worked Fig-12-style check: the span row totals must reproduce the
    // runner's own per-op accounting — both measure the same virtual
    // clock over the same call window, so the ratio is 1.00 by
    // construction (this is the `fig 112` table in miniature).
    println!("--- span rows vs runner per-op time ---");
    println!(
        "{:<10} {:>14} {:>14} {:>7}",
        "op", "runner_ns", "span_row_ns", "ratio"
    );
    for op in [OpKind::Read, OpKind::Write, OpKind::Fsync] {
        let runner_ns = report.op_ns(op);
        if runner_ns == 0 {
            continue;
        }
        let row_ns = spans.row_total(op as usize);
        println!(
            "{:<10} {:>14} {:>14} {:>7.2}",
            op.label(),
            runner_ns,
            row_ns,
            row_ns as f64 / runner_ns as f64
        );
    }
    println!(
        "background (writeback) row: {} ns of detached device time",
        spans.row_total(obsv::BG_ROW)
    );
    println!();

    // Data-lifecycle provenance: where each logical byte multiplied on
    // its way to NVMM, and how far behind the ack durability ran
    // (`ObsvOptions::all()` arms the lineage tracker).
    let lin = obs.lineage().snap();
    println!("--- data lifecycle (lineage) ---");
    for layer in obsv::ALL_LAYERS {
        println!(
            "  {:<18} {:>12} bytes  ({:.2}x logical)",
            layer.label(),
            lin.layer(layer),
            lin.amplification(layer)
        );
    }
    println!(
        "  {} fences ({} per logical KiB); {} stamps, drains sync={} lazy={}",
        lin.fences,
        lin.fences_per_kib(),
        lin.stamps,
        lin.drains_sync,
        lin.drains_lazy
    );
    println!(
        "  durability lag: p50={}ns p99={}ns max={}ns over {} drains",
        lin.lag.quantile(0.50),
        lin.lag.quantile(0.99),
        lin.max_lag_ns,
        lin.lag.count()
    );
    for (row, bytes) in lin.top_amplifiers(4) {
        // Background-row lag folds into the write histogram, mirroring
        // `LineageTable::record_drain`.
        let lag_row = if row < obsv::ALL_OPS.len() {
            row
        } else {
            OpKind::Write as usize
        };
        println!(
            "  top persister {:<10} {:>12} persisted+drained bytes, lag p99 {}ns",
            row_label(row),
            bytes,
            lin.lag_by_op[lag_row].quantile(0.99)
        );
    }
    println!();

    if contention {
        print_contention(&sys.env.contention().snapshot());
    }

    // The retained trace window: as raw JSONL under `--json`, otherwise
    // per-kind totals, the last few events of each kind (so rare events
    // like BBM flips are visible next to the journal-commit firehose),
    // then the newest events verbatim.
    let window = obs.trace.tail(obs.trace.capacity());
    println!(
        "--- trace ring ({} retained of {} emitted, {} dropped) ---",
        window.len(),
        obs.trace.emitted(),
        obs.trace.dropped()
    );
    if json {
        print!("{}", obs.trace.tail_jsonl(obs.trace.capacity()));
    } else {
        let kinds = [
            "reclaim.begin",
            "reclaim.end",
            "watermark.low",
            "foreground.stall",
            "bbm.flip",
            "journal.commit",
            "writeback.periodic",
            "lineage.drained",
            "recovery.begin",
            "recovery.end",
            "fault.injected",
            "audit.violation",
        ];
        for kind in kinds {
            let of_kind: Vec<_> = window.iter().filter(|r| r.ev.kind() == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            println!("  {kind} x{} in window, last:", of_kind.len());
            for rec in of_kind.iter().rev().take(3).rev() {
                println!("    {rec}");
            }
        }
        println!("  newest 12 events:");
        for rec in window.iter().rev().take(12).rev() {
            println!("    {rec}");
        }
    }
    println!();

    // Full Prometheus-style exposition of the final state.
    println!("--- exposition ---");
    print!("{}", sys.registry.snapshot().to_prometheus());

    sys.fs.unmount().expect("unmount");

    // Phase 3: the crash harness exports through the same registry. Run a
    // small crash-point sweep on a scratch image and dump its counters
    // and recovery trace events.
    println!("\n--- crash harness (faultfs) ---");
    let h = faultfs::Harness::new();
    let reg = obsv::MetricsRegistry::new();
    reg.register("", h.stats.clone());
    let script = faultfs::Script::random(42, 10);
    let cfg = faultfs::SweepConfig {
        max_points: 12,
        ..faultfs::SweepConfig::default()
    };
    for kind in faultfs::FsKind::ALL {
        let out = h.sweep(kind, &script, cfg);
        println!(
            "  {:<6} {} boundaries, {} runs (+{} torn), {} checks, {} violations",
            out.kind.label(),
            out.boundaries,
            out.runs,
            out.torn_runs,
            out.checks,
            out.violations.len()
        );
    }
    for rec in h.trace.tail(4) {
        println!("    {rec}");
    }
    print!("{}", reg.snapshot().to_prometheus());
}
