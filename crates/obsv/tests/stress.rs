//! Plain-thread concurrency stress for the lock-free pieces.

use std::sync::Arc;

use obsv::{
    ContentionTable, Histo, Level, MetricsRegistry, Site, TraceEvent, TraceRing, TrackedMutex,
};

/// With per-thread segments sized to hold every event, nothing is lost:
/// the merged tail carries each writer's full output and the global
/// sequence numbers come back gap-free and strictly increasing.
#[test]
fn trace_ring_loses_nothing_within_segment_capacity() {
    const WRITERS: u64 = 8;
    const EACH: u64 = 512;
    // One segment can absorb every event even if all writers collide on
    // the same thread-ordinal shard.
    let ring = Arc::new(TraceRing::new((WRITERS * EACH) as usize));
    ring.set_enabled(true);
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..EACH {
                    ring.emit(w * EACH + i, || TraceEvent::ForegroundStall {
                        ino: w << 32 | i,
                    });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(ring.emitted(), WRITERS * EACH);
    assert_eq!(ring.dropped(), 0, "no wrap, so no drops");
    let tail = ring.tail((WRITERS * EACH) as usize);
    assert_eq!(
        tail.len(),
        (WRITERS * EACH) as usize,
        "every event retained"
    );
    let mut seen = vec![0u64; WRITERS as usize];
    for (expect, rec) in tail.iter().enumerate() {
        assert_eq!(rec.seq, expect as u64, "merged sequence is gap-free");
        match rec.ev {
            TraceEvent::ForegroundStall { ino } => {
                let w = (ino >> 32) as usize;
                seen[w] += 1;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(seen, vec![EACH; WRITERS as usize], "no writer lost events");
}

/// A tracked mutex hammered from many threads at [`Level::Full`] keeps
/// exact books: the guarded counter, the acquisition count, and the
/// wait-sample/contended invariant all agree after the dust settles.
#[test]
fn tracked_mutex_books_stay_exact_under_contention() {
    const THREADS: u64 = 8;
    const EACH: u64 = 5_000;
    let table = Arc::new(ContentionTable::new(|| 0));
    table.set_level(Level::Full);
    let m = Arc::new(TrackedMutex::new(Site::FskitFdtable, 0u64));
    m.attach(&table);
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..EACH {
                    *m.lock() += 1;
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(*m.lock(), THREADS * EACH);
    let snap = table.snapshot();
    let site = snap.site(Site::FskitFdtable);
    assert_eq!(site.acquisitions, THREADS * EACH + 1);
    assert!(site.contended <= site.acquisitions);
    assert_eq!(
        site.wait.count(),
        site.contended,
        "every contended acquire leaves exactly one wait sample"
    );
    assert_eq!(site.hold.count(), site.acquisitions);
}

#[test]
fn trace_ring_concurrent_writers_stay_consistent() {
    const WRITERS: u64 = 8;
    const EACH: u64 = 5_000;
    let ring = Arc::new(TraceRing::new(64));
    ring.set_enabled(true);
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..EACH {
                    ring.emit(i, || TraceEvent::ForegroundStall { ino: w << 32 | i });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(ring.emitted(), WRITERS * EACH);
    // Whatever survived the churn must decode cleanly and carry payloads a
    // writer actually produced, in strictly increasing global order.
    let tail = ring.tail(64);
    assert!(!tail.is_empty());
    assert!(tail.len() <= 64);
    let mut last_seq = None;
    for rec in &tail {
        if let Some(prev) = last_seq {
            assert!(rec.seq > prev, "tail out of order");
        }
        last_seq = Some(rec.seq);
        assert!(rec.seq < WRITERS * EACH);
        match rec.ev {
            TraceEvent::ForegroundStall { ino } => {
                let (w, i) = (ino >> 32, ino & 0xffff_ffff);
                assert!(w < WRITERS && i < EACH, "torn payload: {ino:#x}");
                assert_eq!(rec.at_ns, i, "at_ns belongs to a different event");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    // Drops are allowed under wrap contention but must be rare relative to
    // the total (they only happen when writers collide on one slot).
    assert!(ring.dropped() < WRITERS * EACH / 10);
}

#[test]
fn trace_ring_reader_races_writers() {
    let ring = Arc::new(TraceRing::new(32));
    ring.set_enabled(true);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let (ring, stop) = (ring.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                ring.emit(i, || TraceEvent::JournalCommit {
                    txid: i,
                    log_entries: i % 7,
                });
                i += 1;
            }
        })
    };
    for _ in 0..2_000 {
        for rec in ring.tail(32) {
            match rec.ev {
                TraceEvent::JournalCommit { txid, log_entries } => {
                    assert_eq!(log_entries, txid % 7, "torn read");
                    assert_eq!(rec.at_ns, txid);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn histogram_concurrent_with_snapshots() {
    let h = Arc::new(Histo::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 1..=20_000u64 {
                    h.record(i);
                }
            })
        })
        .collect();
    let reader = {
        let (h, stop) = (h.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut last_count = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = h.snapshot();
                assert!(s.count() >= last_count, "count went backwards");
                last_count = s.count();
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    reader.join().unwrap();
    let s = h.snapshot();
    assert_eq!(s.count(), 4 * 20_000);
    assert_eq!(s.max(), 20_000);
}

#[test]
fn registry_snapshot_under_concurrent_updates() {
    let reg = Arc::new(MetricsRegistry::new());
    let c = reg.counter("stress_ops");
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            })
        })
        .collect();
    let mut last = 0;
    for _ in 0..100 {
        let v = reg.snapshot().counter("stress_ops");
        assert!(v >= last);
        last = v;
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(reg.snapshot().counter("stress_ops"), 40_000);
}
