//! The experiment runner: executes logical actors (workload threads)
//! against a [`FileSystem`].
//!
//! In **virtual** mode the runner is a discrete-event scheduler: each actor
//! has its own logical clock; the actor with the smallest clock steps next,
//! with the thread-local clock switched to it around the step. Background
//! machinery (HiNFS writeback, ext journal commit) runs through
//! [`FileSystem::tick`] on its own actor clock inside the file system, so a
//! 10-thread scalability point is simulated faithfully on one host core.
//!
//! In **spin** mode actors run on real OS threads against the busy-wait
//! cost model, like the paper's emulator.

use std::collections::HashMap;
use std::sync::Arc;

use fskit::{Fd, FileSystem, OpenFlags, Result};
use nvmm::{ledger, NvmmDevice, SimEnv, TimeMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::{ActorMetrics, OpKind, RunReport};

/// When a run stops.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimit {
    /// Stop an actor once its clock passes this many simulated ns.
    pub duration_ns: Option<u64>,
    /// Stop an actor after this many steps.
    pub max_steps: Option<u64>,
}

impl RunLimit {
    /// Run for a fixed simulated duration (the paper runs filebench for
    /// 60 s; experiments scale this down).
    pub fn duration_ms(ms: u64) -> RunLimit {
        RunLimit {
            duration_ns: Some(ms * 1_000_000),
            max_steps: None,
        }
    }

    /// Run each actor for a fixed number of steps.
    pub fn steps(n: u64) -> RunLimit {
        RunLimit {
            duration_ns: None,
            max_steps: Some(n),
        }
    }
}

/// One workload thread.
pub trait Actor: Send {
    /// Performs one logical operation (possibly several syscalls). Returns
    /// `false` when the workload is exhausted.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool>;
}

/// The syscall surface handed to actors: every call is timed into the
/// per-op metrics and byte counters.
pub struct Ctx<'a> {
    /// The file system under test.
    pub fs: &'a dyn FileSystem,
    /// The simulation environment (for `now`).
    pub env: &'a SimEnv,
    /// Deterministic per-actor RNG.
    pub rng: SmallRng,
    metrics: ActorMetrics,
    unsynced: HashMap<Fd, u64>,
}

impl<'a> Ctx<'a> {
    fn new(fs: &'a dyn FileSystem, env: &'a SimEnv, seed: u64) -> Ctx<'a> {
        Ctx {
            fs,
            env,
            rng: SmallRng::seed_from_u64(seed),
            metrics: ActorMetrics::default(),
            unsynced: HashMap::new(),
        }
    }

    fn timed<T>(
        &mut self,
        kind: OpKind,
        f: impl FnOnce(&dyn FileSystem) -> Result<T>,
    ) -> Result<T> {
        let t0 = self.env.now();
        let r = f(self.fs);
        self.metrics.record(kind, self.env.now().saturating_sub(t0));
        r
    }

    /// Opens a file.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> Result<Fd> {
        let fd = self.timed(OpKind::Open, |fs| fs.open(path, flags))?;
        self.unsynced.insert(fd, 0);
        Ok(fd)
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<()> {
        self.unsynced.remove(&fd);
        self.timed(OpKind::Close, |fs| fs.close(fd))
    }

    /// Positional read.
    pub fn read(&mut self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        let n = self.timed(OpKind::Read, |fs| fs.read(fd, off, buf))?;
        self.metrics.bytes_read += n as u64;
        Ok(n)
    }

    /// Positional write.
    pub fn write(&mut self, fd: Fd, off: u64, data: &[u8]) -> Result<usize> {
        let n = self.timed(OpKind::Write, |fs| fs.write(fd, off, data))?;
        self.metrics.bytes_written += n as u64;
        *self.unsynced.entry(fd).or_insert(0) += n as u64;
        Ok(n)
    }

    /// Gather write (`pwritev`): one accounted write op covering every
    /// slice. On an `APPEND` descriptor the run lands at EOF.
    pub fn write_vectored(&mut self, fd: Fd, off: u64, iovs: &[&[u8]]) -> Result<usize> {
        let n = self.timed(OpKind::Write, |fs| fs.write_vectored(fd, off, iovs))?;
        self.metrics.bytes_written += n as u64;
        *self.unsynced.entry(fd).or_insert(0) += n as u64;
        Ok(n)
    }

    /// Append.
    pub fn append(&mut self, fd: Fd, data: &[u8]) -> Result<u64> {
        let off = self.timed(OpKind::Write, |fs| fs.append(fd, data))?;
        self.metrics.bytes_written += data.len() as u64;
        *self.unsynced.entry(fd).or_insert(0) += data.len() as u64;
        Ok(off)
    }

    /// fsync; credits the descriptor's unsynced bytes to the Fig 2 metric.
    pub fn fsync(&mut self, fd: Fd) -> Result<()> {
        let r = self.timed(OpKind::Fsync, |fs| fs.fsync(fd));
        if r.is_ok() {
            if let Some(u) = self.unsynced.get_mut(&fd) {
                self.metrics.fsync_bytes += *u;
                *u = 0;
            }
        }
        r
    }

    /// Unlink.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        self.timed(OpKind::Unlink, |fs| fs.unlink(path))
    }

    /// Mkdir.
    pub fn mkdir(&mut self, path: &str) -> Result<()> {
        self.timed(OpKind::Mkdir, |fs| fs.mkdir(path))
    }

    /// Readdir.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<fskit::DirEntry>> {
        self.timed(OpKind::Readdir, |fs| fs.readdir(path))
    }

    /// Stat.
    pub fn stat(&mut self, path: &str) -> Result<fskit::Stat> {
        self.timed(OpKind::Stat, |fs| fs.stat(path))
    }

    /// fstat (accounted as stat).
    pub fn fstat(&mut self, fd: Fd) -> Result<fskit::Stat> {
        self.timed(OpKind::Stat, |fs| fs.fstat(fd))
    }

    /// Rename.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.timed(OpKind::Rename, |fs| fs.rename(from, to))
    }

    /// Truncate.
    pub fn truncate(&mut self, fd: Fd, size: u64) -> Result<()> {
        self.timed(OpKind::Truncate, |fs| fs.truncate(fd, size))
    }

    /// The metrics accumulated so far (for tests).
    pub fn metrics(&self) -> &ActorMetrics {
        &self.metrics
    }
}

/// Executes actor sets against one file system.
pub struct Runner {
    env: Arc<SimEnv>,
    fs: Arc<dyn FileSystem>,
    device: Option<Arc<NvmmDevice>>,
    registry: Option<Arc<obsv::MetricsRegistry>>,
}

impl Runner {
    /// Creates a runner.
    pub fn new(env: Arc<SimEnv>, fs: Arc<dyn FileSystem>) -> Runner {
        Runner {
            env,
            fs,
            device: None,
            registry: None,
        }
    }

    /// Also captures this device's counter delta into the report (Fig 9b).
    pub fn with_device(mut self, dev: Arc<NvmmDevice>) -> Runner {
        self.device = Some(dev);
        self
    }

    /// Also captures this registry's snapshot delta into the report.
    pub fn with_registry(mut self, registry: Arc<obsv::MetricsRegistry>) -> Runner {
        self.registry = Some(registry);
        self
    }

    /// Runs the actors to completion or to the limit. `seed` derives each
    /// actor's RNG, so runs are reproducible.
    pub fn run(&self, actors: Vec<Box<dyn Actor>>, limit: RunLimit, seed: u64) -> RunReport {
        match self.env.mode() {
            TimeMode::Virtual => self.run_virtual(actors, limit, seed),
            TimeMode::Spin => self.run_spin(actors, limit, seed),
        }
    }

    fn run_virtual(&self, actors: Vec<Box<dyn Actor>>, limit: RunLimit, seed: u64) -> RunReport {
        let start = self.env.now();
        let ledger_before = ledger::snapshot();
        let dev_before = self.device.as_ref().map(|d| d.stats().snapshot());
        let reg_before = self.registry.as_ref().map(|r| r.snapshot());
        let n = actors.len();
        let mut actors = actors;
        let mut ctxs: Vec<Ctx<'_>> = (0..n)
            .map(|i| {
                Ctx::new(
                    &*self.fs,
                    &self.env,
                    seed.wrapping_add(i as u64 * 0x9e37_79b9),
                )
            })
            .collect();
        let mut clocks = vec![start; n];
        let mut alive = vec![true; n];
        let mut steps = vec![0u64; n];
        let mut live = n;
        while live > 0 {
            // Smallest-clock live actor steps next.
            let (i, _) = clocks
                .iter()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .min_by_key(|&(_, &c)| c)
                .expect("live actor exists");
            self.env.set_now(clocks[i]);
            let more = actors[i].step(&mut ctxs[i]).expect("workload step failed");
            ctxs[i].metrics.steps += 1;
            steps[i] += 1;
            clocks[i] = self.env.now();
            // Give background machinery its turn at the current time.
            self.fs.tick(clocks[i]);
            let done = !more
                || limit
                    .duration_ns
                    .is_some_and(|d| clocks[i].saturating_sub(start) >= d)
                || limit.max_steps.is_some_and(|m| steps[i] >= m);
            if done {
                alive[i] = false;
                live -= 1;
            }
        }
        let elapsed = clocks.iter().max().copied().unwrap_or(start) - start;
        // Leave the thread clock at the run's end.
        self.env.set_now(start + elapsed);
        let mut metrics = ActorMetrics::default();
        for ctx in &ctxs {
            metrics.merge(&ctx.metrics);
        }
        RunReport {
            metrics,
            elapsed_ns: elapsed,
            ledger: ledger::snapshot().since(&ledger_before),
            device: self
                .device
                .as_ref()
                .map(|d| {
                    d.stats()
                        .snapshot()
                        .since(&dev_before.expect("snapshot taken"))
                })
                .unwrap_or_default(),
            registry: self.registry.as_ref().map(|r| {
                r.snapshot()
                    .since(reg_before.as_ref().expect("snapshot taken"))
            }),
            actors: n,
        }
    }

    fn run_spin(&self, actors: Vec<Box<dyn Actor>>, limit: RunLimit, seed: u64) -> RunReport {
        let start = self.env.now();
        let dev_before = self.device.as_ref().map(|d| d.stats().snapshot());
        let reg_before = self.registry.as_ref().map(|r| r.snapshot());
        let n = actors.len();
        let results: Vec<(ActorMetrics, nvmm::ledger::Ledger)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, mut actor) in actors.into_iter().enumerate() {
                let env = &self.env;
                let fs = &self.fs;
                handles.push(scope.spawn(move || {
                    let lb = ledger::snapshot();
                    let mut ctx = Ctx::new(&**fs, env, seed.wrapping_add(i as u64 * 0x9e37_79b9));
                    let t0 = env.now();
                    let mut steps = 0u64;
                    loop {
                        let more = actor.step(&mut ctx).expect("workload step failed");
                        ctx.metrics.steps += 1;
                        steps += 1;
                        let done = !more
                            || limit
                                .duration_ns
                                .is_some_and(|d| env.now().saturating_sub(t0) >= d)
                            || limit.max_steps.is_some_and(|m| steps >= m);
                        if done {
                            break;
                        }
                    }
                    (ctx.metrics, ledger::snapshot().since(&lb))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("actor thread"))
                .collect()
        });
        let mut metrics = ActorMetrics::default();
        let mut ledger_total = nvmm::ledger::Ledger::new();
        for (m, l) in &results {
            metrics.merge(m);
            ledger_total.merge(l);
        }
        RunReport {
            metrics,
            elapsed_ns: self.env.now() - start,
            ledger: ledger_total,
            device: self
                .device
                .as_ref()
                .map(|d| {
                    d.stats()
                        .snapshot()
                        .since(&dev_before.expect("snapshot taken"))
                })
                .unwrap_or_default(),
            registry: self.registry.as_ref().map(|r| {
                r.snapshot()
                    .since(reg_before.as_ref().expect("snapshot taken"))
            }),
            actors: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{CostModel, NvmmDevice};
    use pmfs::{Pmfs, PmfsOptions};

    struct WriterActor {
        fd: Option<Fd>,
        count: u32,
    }

    impl Actor for WriterActor {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
            if self.fd.is_none() {
                let fd = ctx.open("/w", OpenFlags::RDWR | OpenFlags::CREATE)?;
                self.fd = Some(fd);
            }
            let fd = self.fd.unwrap();
            ctx.append(fd, &[1u8; 512])?;
            if self.count % 4 == 3 {
                ctx.fsync(fd)?;
            }
            self.count += 1;
            Ok(self.count < 20)
        }
    }

    fn setup() -> (Arc<SimEnv>, Arc<NvmmDevice>, Arc<Pmfs>) {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 8192 * nvmm::BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev.clone(),
            PmfsOptions {
                journal_blocks: 64,
                inode_count: 256,
            },
        )
        .unwrap();
        (env, dev, fs)
    }

    #[test]
    fn virtual_run_collects_metrics() {
        let (env, dev, fs) = setup();
        env.rebase();
        let runner = Runner::new(env, fs).with_device(dev);
        let report = runner.run(
            vec![Box::new(WriterActor { fd: None, count: 0 })],
            RunLimit::default(),
            7,
        );
        assert_eq!(report.metrics.steps, 20);
        assert_eq!(report.op_count(OpKind::Write), 20);
        assert_eq!(report.op_count(OpKind::Fsync), 5);
        assert_eq!(report.op_count(OpKind::Open), 1);
        assert_eq!(report.metrics.bytes_written, 20 * 512);
        // All writes before an fsync are synced: 5 fsyncs cover 4 appends
        // each.
        assert_eq!(report.metrics.fsync_bytes, 20 * 512);
        assert!(report.elapsed_ns > 0);
        assert!(report.device.nvmm_bytes_written > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn multiple_actors_interleave_deterministically() {
        let (env, _dev, fs) = setup();
        env.rebase();
        let runner = Runner::new(env.clone(), fs.clone());
        let mk = || -> Vec<Box<dyn Actor>> {
            (0..4)
                .map(|_| Box::new(WriterActor { fd: None, count: 0 }) as Box<dyn Actor>)
                .collect()
        };
        let r1 = runner.run(mk(), RunLimit::default(), 42);
        let e1 = r1.elapsed_ns;
        // A second identical run on a fresh fs gives identical timing.
        let (env2, _dev2, fs2) = setup();
        env2.rebase();
        let runner2 = Runner::new(env2, fs2);
        let r2 = runner2.run(mk(), RunLimit::default(), 42);
        assert_eq!(e1, r2.elapsed_ns, "virtual time is deterministic");
        assert_eq!(r1.metrics.bytes_written, r2.metrics.bytes_written);
    }

    #[test]
    fn duration_limit_stops_actors() {
        let (env, _dev, fs) = setup();
        env.rebase();
        struct Forever;
        impl Actor for Forever {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
                let fd = ctx.open("/x", OpenFlags::RDWR | OpenFlags::CREATE)?;
                ctx.write(fd, 0, &[0u8; 4096])?;
                ctx.close(fd)?;
                Ok(true)
            }
        }
        let runner = Runner::new(env, fs);
        let report = runner.run(vec![Box::new(Forever)], RunLimit::duration_ms(1), 1);
        assert!(report.elapsed_ns >= 1_000_000);
        assert!(report.metrics.steps > 2);
    }

    #[test]
    fn step_limit_counts_steps() {
        let (env, _dev, fs) = setup();
        env.rebase();
        let runner = Runner::new(env, fs);
        let report = runner.run(
            vec![Box::new(WriterActor { fd: None, count: 0 })],
            RunLimit::steps(5),
            1,
        );
        assert_eq!(report.metrics.steps, 5);
    }
}
