//! Live state introspection and the online invariant auditor for HiNFS.
//!
//! [`Introspect::snapshot`] answers "what is in the write buffer right
//! now": occupancy against `Low_f`/`High_f`, the LRW age distribution, the
//! per-block dirty-cacheline population from the Cacheline Bitmaps, the
//! Eager/Lazy split of the Buffer Benefit Model, ghost-buffer size, open
//! deferred-commit transactions, and the PMFS journal fill — all under one
//! hold of the shared buffer lock so the numbers are mutually consistent.
//!
//! [`Introspect::audit`] checks the structural invariants that tie the
//! DRAM Block Index, the Cacheline Bitmaps and the LRW list together (see
//! [`obsv::AUDIT_INVARIANTS`] codes 0–9), then folds in the PMFS journal's
//! own audit. Both calls take only the subsystem's regular locks and never
//! mutate state, so running them cannot change any workload result.
//!
//! The cross-layer accounting checks (codes 8 and 9) compare counters that
//! quiesce between operations, and the folded-in PMFS audit walks
//! namespace and block trees. Both are only exact when no mutator is
//! mid-operation, so the *in-band* auditor (fsync/writeback hooks) skips
//! them in spin mode, where other real threads run concurrently: there a
//! journal transaction legitimately exists for a moment before its file
//! FIFO entry does. The shard-local checks (codes 0–7) run under each
//! shard's lock and hold at every lock release, so they stay on in every
//! mode. A quiescent [`Introspect::audit`] call (end of run, unmount,
//! post-recovery) always runs the full set.

use obsv::{
    dirty_line_bucket, lrw_age_bucket, AuditReport, BufferSnap, FsSnapshot, Introspect, JournalSnap,
};

use crate::fs::Hinfs;

impl Hinfs {
    /// Runs the auditor and records the result (trace events plus the
    /// `obsv_audit_*` counters) when the mount has auditing enabled.
    pub(crate) fn maybe_audit(&self) {
        if self.cfg.audit {
            // In spin mode other threads are mid-operation; only the
            // shard-local invariants are exact (see the module doc).
            let quiescent = self.env.mode() == nvmm::TimeMode::Virtual;
            let rep = self.audit_inner(quiescent);
            self.obs.record_audit(&rep);
        }
    }
}

impl Introspect for Hinfs {
    fn snapshot(&self) -> FsSnapshot {
        let now = self.env.now();
        let mut b = BufferSnap {
            low_blocks: self.cfg.low_blocks() as u64,
            high_blocks: self.cfg.high_blocks() as u64,
            ..BufferSnap::default()
        };
        // Shards are visited in index order, each under its own lock; the
        // numbers are mutually consistent per shard (in virtual mode whole
        // operations are atomic, so the aggregate is consistent too).
        let mut resident_eager = 0u64;
        for shard in &self.shards {
            let sh = shard.lock();
            let pool = sh.pool();
            b.capacity_blocks += pool.capacity() as u64;
            b.free_blocks += pool.free_count() as u64;
            b.occupied_blocks += pool.lrw.len() as u64;
            b.dirty_blocks += sh.dirty_blocks as u64;
            for slot in pool.lrw.iter_from_tail() {
                let m = pool.meta(slot);
                b.dirty_line_histo[dirty_line_bucket(m.dirty.count_ones())] += 1;
                b.lrw_age_histo[lrw_age_bucket(now.saturating_sub(m.last_write_ns))] += 1;
            }
            if let Some(tail) = pool.lrw.tail() {
                let age = now.saturating_sub(pool.meta(tail).last_write_ns);
                b.lrw_oldest_age_ns = b.lrw_oldest_age_ns.max(age);
            }
            b.files_tracked += sh.files.len() as u64;
            // HashMap iteration order is arbitrary; sort so repeated
            // snapshots of identical state are identical.
            let mut inos: Vec<u64> = sh.files.keys().copied().collect();
            inos.sort_unstable();
            for ino in inos {
                let f = &sh.files[&ino];
                b.eager_blocks += f.eager.len() as u64;
                b.bbm_tracked_blocks += f.bbm.len() as u64;
                b.open_txs += f.txs.len() as u64;
                resident_eager += f
                    .eager
                    .keys()
                    .filter(|&&iblk| f.index.get(iblk).is_some())
                    .count() as u64;
                b.ghost_blocks += f
                    .bbm
                    .keys()
                    .filter(|&&iblk| f.index.get(iblk).is_none())
                    .count() as u64;
            }
        }
        // Eager blocks are evicted when they flip, so resident eager slots
        // only exist transiently; everything else occupied is lazy.
        b.lazy_buffered_blocks = b.occupied_blocks.saturating_sub(resident_eager);
        let s = self.stats.snapshot();
        b.bbm_evals = s.bbm_evals;
        b.bbm_accurate = s.bbm_accurate;
        let u = self.inner.journal().usage();
        FsSnapshot {
            system: fskit::FileSystem::name(self).into(),
            at_ns: now,
            buffer: Some(b),
            journal: Some(JournalSnap {
                capacity_entries: u.capacity_entries,
                fill_entries: u.fill_entries,
                reserved_entries: u.reserved_entries,
                free_entries: u.free_entries,
                open_txs: u.open_txs,
                generation: u.generation,
            }),
            lineage: self
                .obs
                .lineage()
                .enabled()
                .then(|| self.obs.lineage().snap()),
            ..FsSnapshot::default()
        }
    }

    fn audit(&self) -> AuditReport {
        self.audit_inner(true)
    }
}

impl Hinfs {
    /// The audit body. `quiescent: false` restricts the pass to the
    /// shard-local invariants (codes 0–7), which hold at every shard-lock
    /// release even while other threads mutate; `true` adds the
    /// cross-layer sums (codes 8–9) and the PMFS walk, which are only
    /// exact with no operation in flight.
    fn audit_inner(&self, quiescent: bool) -> AuditReport {
        let mut rep = AuditReport::new(self.env.now());
        let mut open_sum = 0u64;
        // Per-shard structural checks: each shard is its own pool + index
        // + LRW universe, so codes 0–7 hold shard-locally.
        for shard in &self.shards {
            let sh = shard.lock();
            let pool = sh.pool();
            let cap = pool.capacity() as u64;
            // config.watermarks: low < high <= capacity, per shard.
            let low = self.cfg.low_blocks_of(pool.capacity()) as u64;
            let high = self.cfg.high_blocks_of(pool.capacity()) as u64;
            rep.check_lt(6, 0, 0, low, high);
            rep.check_le(6, 0, 0, high, cap);
            // lrw.accounting: every slot is either linked or free.
            rep.check_eq(2, 0, 0, (pool.lrw.len() + pool.free_count()) as u64, cap);
            // One pass from the LRW tail: bitmap containment, chain
            // integrity, and the dirty-slot population. (Write *stamps* are
            // not compared: the workload runner gives each actor its own
            // virtual timeline, so `last_write_ns` is only monotonic per
            // actor, while the list itself orders by global touch
            // sequence.)
            let mut dirty_seen = 0u64;
            let mut walked = 0u64;
            let mut newest = None;
            for slot in pool.lrw.iter_from_tail() {
                let m = pool.meta(slot);
                if m.dirty != 0 {
                    dirty_seen += 1;
                }
                // bitmap.dirty_subset_valid: a line must hold data to need
                // writeback.
                rep.check_eq(4, m.ino, m.iblk, m.dirty, m.dirty & m.valid);
                walked += 1;
                newest = Some(slot);
            }
            // lrw.order: the tail-to-head chain covers every linked slot
            // exactly once and ends at the head — a broken or cyclic chain
            // either shorts the walk or never reaches the head.
            rep.check_eq(3, 0, 0, walked, pool.lrw.len() as u64);
            if walked == pool.lrw.len() as u64 {
                let head = pool.lrw.head().map_or(u64::MAX, u64::from);
                rep.check_eq(3, 0, 0, newest.map_or(u64::MAX, u64::from), head);
            }
            // buffer.dirty_count: the incremental gauge matches a full
            // count.
            rep.check_eq(5, 0, 0, dirty_seen, sh.dirty_blocks as u64);
            let mut inos: Vec<u64> = sh.files.keys().copied().collect();
            inos.sort_unstable();
            let mut index_entries = 0u64;
            for &ino in &inos {
                let f = &sh.files[&ino];
                index_entries += f.index.len() as u64;
                open_sum += f.txs.len() as u64;
                // index.slot_owner: each index entry points at a slot bound
                // to exactly this (ino, iblk).
                f.index.for_each(&mut |iblk, slot: &u32| {
                    let m = pool.meta(*slot);
                    rep.check_eq(0, ino, iblk, m.ino, ino);
                    rep.check_eq(0, ino, iblk, m.iblk, iblk);
                });
                // tx.pending_buffered: a block gating a deferred commit
                // must still be buffered dirty, else the commit could never
                // drain.
                for t in &f.txs {
                    let mut blocks: Vec<u64> = t.pending.iter().copied().collect();
                    blocks.sort_unstable();
                    for iblk in blocks {
                        let buffered_dirty =
                            f.index.get(iblk).is_some_and(|&s| pool.meta(s).dirty != 0);
                        rep.check_eq(7, ino, iblk, buffered_dirty as u64, 1);
                    }
                }
            }
            // index.coverage: with slot owners verified, equal counts make
            // the index-entry <-> occupied-slot relation a bijection.
            rep.check_eq(1, 0, 0, index_entries, pool.lrw.len() as u64);
        }
        if quiescent {
            // tx.accounting: the opened/committed counters explain every
            // open transaction, summed over all shards.
            let s = self.stats.snapshot();
            rep.check_eq(
                8,
                0,
                0,
                s.txs_opened.saturating_sub(s.txs_committed),
                open_sum,
            );
            // journal.reserved (cross-layer): every journal-side open
            // transaction belongs to some file's FIFO in some shard.
            rep.check_eq(9, 0, 0, self.inner.journal().usage().open_txs, open_sum);
            // lineage.sync_decay_bound: no acked write may stay volatile
            // longer than the mount's own staleness promise — the 30 s
            // dirty-age rule plus up to two periodic-pass periods of
            // scheduling slack.
            if self.obs.lineage().enabled() {
                let bound = self.cfg.dirty_age_ns + 2 * self.cfg.periodic_wb_ns;
                rep.check_le(14, 0, 0, self.obs.lineage().max_lag_ns(), bound);
            }
            rep.merge(Introspect::audit(self.inner.as_ref()));
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, OpenFlags};
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use obsv::Introspect;
    use pmfs::PmfsOptions;

    use crate::fs::Hinfs;
    use crate::HinfsConfig;

    fn fresh(cfg: HinfsConfig) -> Arc<Hinfs> {
        let env = SimEnv::new_virtual(CostModel::default());
        env.set_now(0);
        let dev = NvmmDevice::new_tracked(env, 16384 * BLOCK_SIZE);
        Hinfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 128,
                inode_count: 512,
            },
            cfg,
        )
        .unwrap()
    }

    fn small_cfg() -> HinfsConfig {
        HinfsConfig::default().with_buffer_bytes(64 * BLOCK_SIZE)
    }

    fn populate(fs: &Arc<Hinfs>) -> fskit::Fd {
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        fs.write(fd, 0, &vec![0xAB; 5 * BLOCK_SIZE]).unwrap();
        fs.write(fd, 100, &[1, 2, 3]).unwrap();
        // A sub-line write buffers block 5 with most lines still invalid.
        fs.write(fd, 5 * BLOCK_SIZE as u64 + 100, &[9, 9]).unwrap();
        fd
    }

    #[test]
    fn snapshot_agrees_with_pool_and_stats() {
        let fs = fresh(small_cfg());
        let fd = populate(&fs);
        let snap = fs.snapshot();
        let b = snap.buffer.as_ref().unwrap();
        assert_eq!(b.capacity_blocks, fs.config().buffer_blocks() as u64);
        assert_eq!(b.occupied_blocks, b.capacity_blocks - b.free_blocks);
        assert!(b.dirty_blocks >= 5, "five blocks written lazily");
        assert_eq!(
            b.dirty_line_histo.iter().sum::<u64>(),
            b.occupied_blocks,
            "every occupied block lands in exactly one dirty-line bucket"
        );
        assert_eq!(b.lrw_age_histo.iter().sum::<u64>(), b.occupied_blocks);
        assert_eq!(b.low_blocks, fs.config().low_blocks() as u64);
        assert_eq!(b.high_blocks, fs.config().high_blocks() as u64);
        assert_eq!(b.files_tracked, 1);
        assert!(b.open_txs >= 1, "the size-changing write deferred a commit");
        let j = snap.journal.as_ref().unwrap();
        assert_eq!(j.open_txs, b.open_txs, "journal and tracker agree");
        assert_eq!(
            j.capacity_entries,
            j.fill_entries + j.reserved_entries + j.free_entries
        );
        // The dirty population drains after fsync.
        fs.fsync(fd).unwrap();
        let after = fs.snapshot();
        assert_eq!(after.buffer.as_ref().unwrap().dirty_blocks, 0);
        assert_eq!(after.journal.as_ref().unwrap().open_txs, 0);
        assert!(after.to_json().contains("\"buffer\":{"));
        fs.close(fd).unwrap();
    }

    #[test]
    fn audit_is_clean_through_a_workload() {
        let fs = fresh(small_cfg().with_audit());
        let fd = populate(&fs);
        let rep = fs.audit();
        assert!(rep.is_clean(), "violations: {:?}", rep.violations);
        assert!(rep.checks > 10, "the pass actually checked relations");
        // fsync runs the auditor itself under the flag.
        fs.fsync(fd).unwrap();
        assert!(fs.obs().audit_checks() > 0);
        assert_eq!(fs.obs().audit_violations(), 0);
        assert!(fs.audit().is_clean());
        fs.close(fd).unwrap();
        fs.unmount().unwrap();
    }

    #[test]
    fn corrupted_bitmap_is_caught_as_violation() {
        let fs = fresh(small_cfg());
        let _fd = populate(&fs);
        let ino = fs.stat("/f").unwrap().ino;
        // Flip a dirty bit with no backing valid line — exactly the class
        // of bug the Cacheline Bitmap invariant exists to catch.
        {
            let mut sh = fs.shard(ino).lock();
            let slot = sh.slot_of(ino, 5).expect("block 5 is buffered");
            let m = sh.pool_mut().meta_mut(slot);
            let stray = !m.valid;
            assert_ne!(stray, 0, "partial write leaves invalid lines");
            m.dirty |= 1u64 << (63 - stray.leading_zeros());
        }
        let rep = fs.audit();
        assert!(!rep.is_clean());
        let v = rep
            .violations
            .iter()
            .find(|v| v.invariant() == "bitmap.dirty_subset_valid")
            .expect("bitmap violation reported");
        assert_eq!((v.ino, v.iblk), (ino, 5));
        // Recording surfaces it on the counter and the trace ring.
        fs.obs().record_audit(&rep);
        assert!(fs.obs().audit_violations() >= 1);
        let traced = fs
            .obs()
            .trace
            .tail(16)
            .into_iter()
            .any(|r| r.ev.kind() == "audit.violation");
        assert!(traced, "violation emitted as a trace event");
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        let fs = fresh(small_cfg());
        let _fd = populate(&fs);
        let a = fs.snapshot();
        let b = fs.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}
