//! The ext-family file system object: ext2/ext4 on NVMMBD, and EXT4-DAX.
//!
//! All three personalities share the namespace, the on-disk format, the
//! buffer cache and the journal; they differ in the data path and in
//! whether the journal is active (see [`crate::ExtMode`]).
//!
//! Lock order: `ns` mutex → inode `RwLock` → cache/journal internals.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blockdev::Nvmmbd;
use fskit::{DirEntry, Fd, FdTable, FileSystem, FileType, FsError, OpenFlags, Result, Stat};
use nvmm::{Cat, NvmmDevice, SimEnv, BLOCK_SIZE};
use obsv::{FsObs, OpKind, Phase, Site, TraceEvent, TrackedMutex};

use crate::alloc::DiskBitmap;
use crate::blkmap;
use crate::cache::BufferCache;
use crate::dir;
use crate::inode::{clear_inode, write_inode, ExtInodeCache, ExtInodeHandle, ExtInodeMem};
use crate::jbd::Jbd;
use crate::layout::{self, ExtLayout, ROOT_INO};
use crate::ExtMode;

/// Format- and mount-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExtOptions {
    /// Journal region size in blocks.
    pub journal_blocks: u64,
    /// Number of inode slots.
    pub inode_count: u64,
    /// Page cache capacity in 4 KiB pages (the paper gives the NVMMBD
    /// systems 3 GB of system memory next to a 5 GB dataset; experiments
    /// scale this relative to the working set).
    pub cache_pages: usize,
    /// Journal commit / writeback period (5 s, like jbd2).
    pub periodic_commit_ns: u64,
    /// Age after which dirty pages are written back (30 s default).
    pub dirty_age_ns: u64,
}

impl Default for ExtOptions {
    fn default() -> Self {
        ExtOptions {
            journal_blocks: 1024,
            inode_count: 16384,
            cache_pages: 16384,
            periodic_commit_ns: 5_000_000_000,
            dirty_age_ns: 30_000_000_000,
        }
    }
}

/// Per-open state.
#[derive(Debug)]
pub struct ExtOpenFile {
    pub ino: u64,
    pub flags: OpenFlags,
    pub handle: Arc<ExtInodeHandle>,
}

/// A mounted ext2/ext4/ext4-dax instance.
pub struct Extfs {
    mode: ExtMode,
    env: Arc<SimEnv>,
    bd: Arc<Nvmmbd>,
    cache: Arc<BufferCache>,
    layout: ExtLayout,
    jbd: Jbd,
    balloc: DiskBitmap,
    ialloc: DiskBitmap,
    icache: ExtInodeCache,
    fds: FdTable<ExtOpenFile>,
    ns: TrackedMutex<()>,
    opts: ExtOptions,
    last_commit: AtomicU64,
    /// Device data blocks dirtied per inode, for ordered-mode fsync.
    dirty_data: TrackedMutex<HashMap<u64, HashSet<u64>>>,
    obs: Arc<FsObs>,
    /// Journal transactions replayed at mount (0 on a fresh mkfs mount).
    replayed: u64,
}

impl Extfs {
    /// Formats `dev` and mounts it in the given mode.
    pub fn mkfs(dev: Arc<NvmmDevice>, mode: ExtMode, opts: ExtOptions) -> Result<Arc<Extfs>> {
        let bd = Arc::new(Nvmmbd::new(dev));
        let total_blocks = bd.num_blocks();
        let l = ExtLayout::compute(total_blocks, opts.journal_blocks, opts.inode_count)?;
        let cache = BufferCache::new(bd.clone(), opts.cache_pages);
        Jbd::format(&bd, l.journal_start);
        // Zero the bitmap and inode table regions.
        let zero = vec![0u8; BLOCK_SIZE];
        for b in l.ibitmap_start..l.data_start {
            cache.write(Cat::Meta, b, 0, &zero, 0);
        }
        // Pre-mark metadata blocks and reserved inodes; journaling off
        // during mkfs.
        let nojournal = Jbd::open(bd.clone(), l.journal_start, l.journal_blocks, false);
        let balloc = DiskBitmap::load(&cache, l.bbitmap_start, l.total_blocks);
        for b in 0..l.data_start {
            balloc.set(&cache, &nojournal, b, 0);
        }
        let ialloc = DiskBitmap::load(&cache, l.ibitmap_start, l.inode_count);
        ialloc.set(&cache, &nojournal, 0, 0); // reserved
        ialloc.set(&cache, &nojournal, ROOT_INO, 0);
        write_inode(
            &cache,
            &nojournal,
            &l,
            ROOT_INO,
            &ExtInodeMem::new(FileType::Dir, 0),
            0,
        );
        layout::write_superblock(&cache, &l, 0);
        cache.flush_all(obsv::DrainKind::Sync);
        drop(cache);
        let dev = bd.byte_device().clone();
        drop(bd);
        Self::mount(dev, mode, opts)
    }

    /// Mounts an existing file system, replaying the journal first in the
    /// journaled modes.
    pub fn mount(dev: Arc<NvmmDevice>, mode: ExtMode, opts: ExtOptions) -> Result<Arc<Extfs>> {
        let bd = Arc::new(Nvmmbd::new(dev));
        let cache = Arc::new(BufferCache::new(bd.clone(), opts.cache_pages));
        let (l, _clean) = layout::read_superblock(&cache)?;
        let mut replayed = 0;
        if mode.journaled() {
            replayed = Jbd::replay(&bd, l.journal_start, l.journal_blocks);
            Jbd::format(&bd, l.journal_start);
        }
        let jbd = Jbd::open(
            bd.clone(),
            l.journal_start,
            l.journal_blocks,
            mode.journaled(),
        );
        let balloc = DiskBitmap::load(&cache, l.bbitmap_start, l.total_blocks);
        let ialloc = DiskBitmap::load(&cache, l.ibitmap_start, l.inode_count);
        layout::set_clean(&cache, false, 0);
        let env = bd.byte_device().env().clone();
        let obs = Arc::new(FsObs::default());
        obs.set_spans(bd.byte_device().spans().clone());
        cache.attach_obs(obs.clone());
        let contention = bd.byte_device().contention().clone();
        balloc.attach_contention(&contention);
        ialloc.attach_contention(&contention);
        let icache = ExtInodeCache::new();
        icache.attach_contention(&contention);
        let fds = FdTable::new();
        fds.attach_contention(&contention);
        Ok(Arc::new(Extfs {
            mode,
            env,
            bd,
            cache,
            layout: l,
            jbd,
            balloc,
            ialloc,
            icache,
            fds,
            ns: TrackedMutex::attached(&contention, Site::ExtfsNamespace, ()),
            opts,
            last_commit: AtomicU64::new(0),
            dirty_data: TrackedMutex::attached(&contention, Site::ExtfsDirtyData, HashMap::new()),
            obs,
            replayed,
        }))
    }

    /// Journal transactions replayed at mount (diagnostics).
    pub fn recovery_replayed(&self) -> u64 {
        self.replayed
    }

    /// The buffer cache (diagnostics).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Latency histograms, slow-op log and trace ring.
    pub fn obs(&self) -> &Arc<FsObs> {
        &self.obs
    }

    /// Runs `f` as operation `op`, recording its latency when timing is
    /// enabled (one relaxed load otherwise).
    fn timed<T>(&self, op: OpKind, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let spans = self.bd.byte_device().spans().clone();
        spans.op_scope(
            op,
            || self.env.now(),
            || {
                let _lin = self.obs.lineage().op_scope(op);
                if !self.obs.timing_enabled() {
                    return f();
                }
                let start = self.env.now();
                let flight = self.obs.flight();
                flight.begin(op, start, self.obs.trace.emitted());
                let r = f();
                let end = self.env.now();
                flight.finish(end.saturating_sub(start), self.obs.trace.emitted());
                self.obs.record_op(op, end.saturating_sub(start), start);
                r
            },
        )
    }

    /// Commits the running jbd transaction, tracing the commit when it
    /// actually wrote something. `kind` classifies the durability drain:
    /// sync when a caller asked for it (fsync, sync, unmount), lazy for
    /// the periodic tick.
    fn jbd_commit(&self, kind: obsv::DrainKind) {
        let pending = self.jbd.running_len() as u64;
        self.bd.byte_device().spans().scope(
            Phase::Journal,
            || self.env.now(),
            || {
                self.jbd.commit(&self.cache, kind);
            },
        );
        if pending > 0 {
            self.obs
                .trace
                .emit(self.now(), || TraceEvent::JournalCommit {
                    txid: self.jbd.commits(),
                    log_entries: pending,
                });
        }
    }

    /// The block device (diagnostics).
    pub fn device(&self) -> &Arc<Nvmmbd> {
        &self.bd
    }

    /// The simulation environment.
    pub fn env(&self) -> &Arc<SimEnv> {
        &self.env
    }

    /// Free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.balloc.free_count()
    }

    fn now(&self) -> u64 {
        self.env.now()
    }

    // ----- namespace internals (mirroring the PMFS structure) -----

    fn inode(&self, ino: u64) -> Result<Arc<ExtInodeHandle>> {
        self.icache.get(&self.cache, &self.layout, ino)
    }

    fn resolve(&self, comps: &[&str]) -> Result<Arc<ExtInodeHandle>> {
        let mut h = self.inode(ROOT_INO)?;
        for comp in comps {
            let next = {
                let state = h.state.read();
                if state.ftype != FileType::Dir {
                    return Err(FsError::NotADirectory);
                }
                dir::lookup(&self.cache, &state, comp)?
                    .ok_or(FsError::NotFound)?
                    .0
            };
            h = self.inode(next)?;
        }
        Ok(h)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(Arc<ExtInodeHandle>, &'p str)> {
        let (parent_comps, name) = fskit::path::split_parent(path)?;
        let parent = self.resolve(&parent_comps)?;
        if parent.state.read().ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }

    fn create_node(
        &self,
        parent: &Arc<ExtInodeHandle>,
        name: &str,
        ftype: FileType,
    ) -> Result<Arc<ExtInodeHandle>> {
        // Injected ENOSPC: refuse before any allocation so the namespace op
        // is trivially all-or-nothing.
        if nvmm::fault::alloc_blocked(self.bd.byte_device()) {
            return Err(FsError::NoSpace);
        }
        let now = self.now();
        let ino = self.ialloc.alloc(&self.cache, &self.jbd, now)?;
        let mem = ExtInodeMem::new(ftype, now);
        write_inode(&self.cache, &self.jbd, &self.layout, ino, &mem, now);
        let mut pstate = parent.state.write();
        if let Err(e) = dir::add(
            &self.cache,
            &self.jbd,
            &self.balloc,
            &mut pstate,
            name,
            ino,
            ftype,
            now,
        ) {
            clear_inode(&self.cache, &self.jbd, &self.layout, ino, now);
            self.ialloc.release(&self.cache, &self.jbd, ino, now);
            return Err(e);
        }
        pstate.mtime = now;
        let p = *pstate;
        drop(pstate);
        write_inode(&self.cache, &self.jbd, &self.layout, parent.ino, &p, now);
        Ok(self.icache.install(ino, mem))
    }

    /// Frees an inode's data and slot.
    fn free_inode(&self, h: &Arc<ExtInodeHandle>) {
        let now = self.now();
        let mut state = h.state.write();
        blkmap::free_from(&self.cache, &self.jbd, &self.balloc, &mut state, 0, now);
        state.size = 0;
        clear_inode(&self.cache, &self.jbd, &self.layout, h.ino, now);
        self.ialloc.release(&self.cache, &self.jbd, h.ino, now);
        drop(state);
        self.icache.forget(h.ino);
        self.dirty_data.lock().remove(&h.ino);
    }

    fn unlink_locked(&self, path: &str) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let now = self.now();
        let (ino, ftype) = {
            let pstate = parent.state.read();
            dir::lookup(&self.cache, &pstate, name)?.ok_or(FsError::NotFound)?
        };
        if ftype != FileType::File {
            return Err(FsError::IsADirectory);
        }
        let child = self.inode(ino)?;
        {
            let mut pstate = parent.state.write();
            dir::remove(&self.cache, &self.jbd, &pstate, name, now)?;
            pstate.mtime = now;
            let p = *pstate;
            drop(pstate);
            write_inode(&self.cache, &self.jbd, &self.layout, parent.ino, &p, now);
        }
        let freeable = {
            let mut cstate = child.state.write();
            cstate.nlink -= 1;
            let freeable = cstate.nlink == 0 && *child.opens.lock() == 0;
            if !freeable {
                let snap = *cstate;
                drop(cstate);
                write_inode(&self.cache, &self.jbd, &self.layout, ino, &snap, now);
            }
            freeable
        };
        if freeable {
            self.free_inode(&child);
        }
        Ok(())
    }

    fn rmdir_locked(&self, path: &str) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let now = self.now();
        let (ino, ftype) = {
            let pstate = parent.state.read();
            dir::lookup(&self.cache, &pstate, name)?.ok_or(FsError::NotFound)?
        };
        if ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        let child = self.inode(ino)?;
        if !dir::is_empty(&self.cache, &child.state.read())? {
            return Err(FsError::DirectoryNotEmpty);
        }
        {
            let mut pstate = parent.state.write();
            dir::remove(&self.cache, &self.jbd, &pstate, name, now)?;
            pstate.mtime = now;
            let p = *pstate;
            drop(pstate);
            write_inode(&self.cache, &self.jbd, &self.layout, parent.ino, &p, now);
        }
        self.free_inode(&child);
        Ok(())
    }

    // ----- data paths -----

    /// Buffered (page cache) write of one chunk.
    fn cached_write_chunk(
        &self,
        state: &mut ExtInodeMem,
        ino: u64,
        iblk: u64,
        in_blk: usize,
        payload: &[u8],
        now: u64,
    ) -> Result<()> {
        let (blk, fresh) = blkmap::ensure(&self.cache, &self.jbd, &self.balloc, state, iblk, now)?;
        self.bd.byte_device().spans().scope(
            Phase::DramCopy,
            || self.env.now(),
            || {
                if fresh && (in_blk != 0 || payload.len() != BLOCK_SIZE) {
                    // Fresh block, partial write: materialize a zeroed page
                    // and lay the payload in, avoiding a fetch of stale
                    // device bytes.
                    let mut page = vec![0u8; BLOCK_SIZE];
                    page[in_blk..in_blk + payload.len()].copy_from_slice(payload);
                    self.cache.write(Cat::UserWrite, blk, 0, &page, now);
                } else {
                    self.cache.write(Cat::UserWrite, blk, in_blk, payload, now);
                }
            },
        );
        self.dirty_data.lock().entry(ino).or_default().insert(blk);
        Ok(())
    }

    /// DAX write of one chunk: single copy straight to the NVMM bytes.
    fn dax_write_chunk(
        &self,
        state: &mut ExtInodeMem,
        iblk: u64,
        in_blk: usize,
        payload: &[u8],
        now: u64,
    ) -> Result<()> {
        let dev = self.bd.byte_device();
        let (blk, fresh) = blkmap::ensure(&self.cache, &self.jbd, &self.balloc, state, iblk, now)?;
        let base = blk * BLOCK_SIZE as u64;
        if fresh {
            if in_blk > 0 {
                dev.zero_persist(Cat::UserWrite, base, in_blk);
            }
            let tail = in_blk + payload.len();
            if tail < BLOCK_SIZE {
                dev.zero_persist(Cat::UserWrite, base + tail as u64, BLOCK_SIZE - tail);
            }
        }
        dev.write_persist(Cat::UserWrite, base + in_blk as u64, payload);
        // Single-copy persist straight to NVMM: durable at op return.
        self.obs.lineage().record_inline_drain(payload.len() as u64);
        Ok(())
    }

    fn write_impl(&self, fd: Fd, off_req: u64, data: &[u8], append: bool) -> Result<u64> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        if !of.flags.writable() {
            return Err(FsError::BadFd);
        }
        let now = self.now();
        let mut state = of.handle.state.write();
        let off = if append || of.flags.contains(OpenFlags::APPEND) {
            state.size
        } else {
            off_req
        };
        if data.is_empty() {
            return Ok(off);
        }
        // Injected ENOSPC: fail the whole write up front with a clean error
        // rather than part-way through the chunk loop.
        if nvmm::fault::alloc_blocked(self.bd.byte_device()) {
            return Err(FsError::NoSpace);
        }
        let end = off
            .checked_add(data.len() as u64)
            .filter(|&e| e / BLOCK_SIZE as u64 <= blkmap::max_blocks())
            .ok_or(FsError::FileTooLarge)?;
        obsv::note_logical(data.len() as u64);
        let mut done = 0;
        while done < data.len() {
            let pos = off + done as u64;
            let iblk = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - in_blk).min(data.len() - done);
            let payload = &data[done..done + chunk];
            if self.mode.dax_data() {
                self.dax_write_chunk(&mut state, iblk, in_blk, payload, now)?;
            } else {
                self.cached_write_chunk(&mut state, of.ino, iblk, in_blk, payload, now)?;
            }
            done += chunk;
        }
        if end > state.size {
            state.size = end;
        }
        state.mtime = now;
        let snap = *state;
        drop(state);
        write_inode(&self.cache, &self.jbd, &self.layout, of.ino, &snap, now);
        if of.flags.contains(OpenFlags::SYNC) {
            self.fsync_ino(of.ino)?;
        }
        Ok(off)
    }

    fn read_impl(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        if !of.flags.readable() {
            return Err(FsError::BadFd);
        }
        let state = of.handle.state.read();
        if off >= state.size {
            return Ok(0);
        }
        let n = buf.len().min((state.size - off) as usize);
        let mut done = 0;
        while done < n {
            let pos = off + done as u64;
            let iblk = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - in_blk).min(n - done);
            let out = &mut buf[done..done + chunk];
            match blkmap::lookup(&self.cache, &state, iblk) {
                Some(blk) => {
                    if self.mode.dax_data() {
                        // Single copy from the NVMM bytes.
                        self.bd.byte_device().read(
                            Cat::UserRead,
                            blk * BLOCK_SIZE as u64 + in_blk as u64,
                            out,
                        );
                    } else {
                        self.bd.byte_device().spans().scope(
                            Phase::DramCopy,
                            || self.env.now(),
                            || {
                                self.cache.read(Cat::UserRead, blk, in_blk, out);
                            },
                        );
                    }
                }
                None => {
                    out.fill(0);
                    self.env.charge_dram_copy(Cat::UserRead, chunk);
                }
            }
            done += chunk;
        }
        Ok(n)
    }

    /// fsync core: flush the file's data pages (ordered mode), then commit
    /// the journal (ext4/dax) or flush its inode block (ext2).
    fn fsync_ino(&self, ino: u64) -> Result<()> {
        // Injected jbd backpressure: refuse the commit before draining the
        // dirty set so a retry still sees every dirty block.
        if self.jbd.enabled() && nvmm::fault::journal_blocked(self.bd.byte_device()) {
            return Err(FsError::JournalFull);
        }
        let mut blocks: Vec<u64> = {
            let mut dd = self.dirty_data.lock();
            match dd.get_mut(&ino) {
                Some(set) => set.drain().collect(),
                None => Vec::new(),
            }
        };
        // The set iterates in hash order; flush in block order so the
        // journal and device see a run-independent sequence.
        blocks.sort_unstable();
        for blk in blocks {
            self.cache.flush_block(blk, obsv::DrainKind::Sync);
        }
        if self.jbd.enabled() {
            self.jbd_commit(obsv::DrainKind::Sync);
        } else {
            // ext2: push the inode block too, then barrier.
            let (iblk, _) = self.layout.inode_loc(ino);
            self.cache.flush_block(iblk, obsv::DrainKind::Sync);
        }
        self.bd.flush();
        Ok(())
    }

    fn open_impl(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.env.charge_syscall();
        let _ns = self.ns.lock();
        let (parent, name) = self.resolve_parent(path)?;
        fskit::path::validate_name(name)?;
        let existing = {
            let pstate = parent.state.read();
            if pstate.ftype != FileType::Dir {
                return Err(FsError::NotADirectory);
            }
            dir::lookup(&self.cache, &pstate, name)?
        };
        let handle = match existing {
            Some((_, FileType::Dir)) => return Err(FsError::IsADirectory),
            Some((ino, FileType::File)) => {
                if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                    return Err(FsError::AlreadyExists);
                }
                self.inode(ino)?
            }
            None => {
                if !flags.contains(OpenFlags::CREATE) {
                    return Err(FsError::NotFound);
                }
                self.create_node(&parent, name, FileType::File)?
            }
        };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            let now = self.now();
            let mut state = handle.state.write();
            if state.size > 0 {
                blkmap::free_from(&self.cache, &self.jbd, &self.balloc, &mut state, 0, now);
                state.size = 0;
                state.mtime = now;
                let snap = *state;
                drop(state);
                write_inode(&self.cache, &self.jbd, &self.layout, handle.ino, &snap, now);
                self.dirty_data.lock().remove(&handle.ino);
            }
        }
        *handle.opens.lock() += 1;
        Ok(self.fds.insert(ExtOpenFile {
            ino: handle.ino,
            flags,
            handle,
        }))
    }

    fn truncate_impl(&self, fd: Fd, size: u64) -> Result<()> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        if !of.flags.writable() {
            return Err(FsError::BadFd);
        }
        let now = self.now();
        let mut state = of.handle.state.write();
        if size < state.size {
            let keep = size.div_ceil(BLOCK_SIZE as u64);
            blkmap::free_from(&self.cache, &self.jbd, &self.balloc, &mut state, keep, now);
            // Zero the tail of the new last block.
            let in_blk = (size % BLOCK_SIZE as u64) as usize;
            if in_blk != 0 {
                if let Some(blk) = blkmap::lookup(&self.cache, &state, size / BLOCK_SIZE as u64) {
                    let zeros = vec![0u8; BLOCK_SIZE - in_blk];
                    if self.mode.dax_data() {
                        self.bd.byte_device().zero_persist(
                            Cat::UserWrite,
                            blk * BLOCK_SIZE as u64 + in_blk as u64,
                            BLOCK_SIZE - in_blk,
                        );
                    } else {
                        self.cache.write(Cat::UserWrite, blk, in_blk, &zeros, now);
                        self.dirty_data
                            .lock()
                            .entry(of.ino)
                            .or_default()
                            .insert(blk);
                    }
                }
            }
        }
        state.size = size;
        state.mtime = now;
        let snap = *state;
        drop(state);
        write_inode(&self.cache, &self.jbd, &self.layout, of.ino, &snap, now);
        Ok(())
    }
}

impl FileSystem for Extfs {
    fn name(&self) -> &'static str {
        self.mode.name()
    }

    fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.timed(OpKind::Open, || self.open_impl(path, flags))
    }

    fn close(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Close, || {
            self.env.charge_syscall();
            let of = self.fds.remove(fd)?;
            let orphan = {
                let mut opens = of.handle.opens.lock();
                *opens -= 1;
                *opens == 0 && of.handle.state.read().nlink == 0
            };
            if orphan {
                self.free_inode(&of.handle);
            }
            Ok(())
        })
    }

    fn read(&self, fd: Fd, off: u64, buf: &mut [u8]) -> Result<usize> {
        self.timed(OpKind::Read, || self.read_impl(fd, off, buf))
    }

    fn write(&self, fd: Fd, off: u64, data: &[u8]) -> Result<usize> {
        self.timed(OpKind::Write, || {
            self.write_impl(fd, off, data, false).map(|_| data.len())
        })
    }

    fn append(&self, fd: Fd, data: &[u8]) -> Result<u64> {
        self.timed(OpKind::Write, || self.write_impl(fd, 0, data, true))
    }

    fn fsync(&self, fd: Fd) -> Result<()> {
        self.timed(OpKind::Fsync, || {
            self.env.charge_syscall();
            let of = self.fds.get(fd)?;
            self.fsync_ino(of.ino)
        })
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.timed(OpKind::Unlink, || {
            self.env.charge_syscall();
            let _ns = self.ns.lock();
            self.unlink_locked(path)
        })
    }

    fn truncate(&self, fd: Fd, size: u64) -> Result<()> {
        self.timed(OpKind::Truncate, || self.truncate_impl(fd, size))
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.env.charge_syscall();
        let _ns = self.ns.lock();
        let (parent, name) = self.resolve_parent(path)?;
        fskit::path::validate_name(name)?;
        {
            let pstate = parent.state.read();
            if dir::lookup(&self.cache, &pstate, name)?.is_some() {
                return Err(FsError::AlreadyExists);
            }
        }
        self.create_node(&parent, name, FileType::Dir)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> Result<()> {
        self.env.charge_syscall();
        let _ns = self.ns.lock();
        self.rmdir_locked(path)
    }

    fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        self.env.charge_syscall();
        let comps = fskit::path::components(path)?;
        let h = self.resolve(&comps)?;
        let state = h.state.read();
        if state.ftype != FileType::Dir {
            return Err(FsError::NotADirectory);
        }
        dir::list(&self.cache, &state)
    }

    fn stat(&self, path: &str) -> Result<Stat> {
        self.env.charge_syscall();
        let comps = fskit::path::components(path)?;
        let h = self.resolve(&comps)?;
        let s = h.state.read();
        Ok(Stat {
            ino: h.ino,
            ftype: s.ftype,
            size: s.size,
            blocks: s.blocks,
            nlink: s.nlink,
            mtime_ns: s.mtime,
        })
    }

    fn fstat(&self, fd: Fd) -> Result<Stat> {
        self.env.charge_syscall();
        let of = self.fds.get(fd)?;
        let s = of.handle.state.read();
        Ok(Stat {
            ino: of.ino,
            ftype: s.ftype,
            size: s.size,
            blocks: s.blocks,
            nlink: s.nlink,
            mtime_ns: s.mtime,
        })
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.env.charge_syscall();
        let _ns = self.ns.lock();
        let now = self.now();
        let (src_parent, src_name) = self.resolve_parent(from)?;
        let (dst_parent, dst_name) = self.resolve_parent(to)?;
        fskit::path::validate_name(dst_name)?;
        let (ino, ftype) = {
            let pstate = src_parent.state.read();
            dir::lookup(&self.cache, &pstate, src_name)?.ok_or(FsError::NotFound)?
        };
        let dst_existing = {
            let pstate = dst_parent.state.read();
            dir::lookup(&self.cache, &pstate, dst_name)?
        };
        if let Some((dino, dftype)) = dst_existing {
            if dino == ino {
                return Ok(());
            }
            match (ftype, dftype) {
                (FileType::File, FileType::File) => self.unlink_locked(to)?,
                (FileType::Dir, FileType::Dir) => self.rmdir_locked(to)?,
                (FileType::File, FileType::Dir) => return Err(FsError::IsADirectory),
                (FileType::Dir, FileType::File) => return Err(FsError::NotADirectory),
            }
        }
        let same_parent = Arc::ptr_eq(&src_parent, &dst_parent);
        {
            let mut pstate = src_parent.state.write();
            dir::remove(&self.cache, &self.jbd, &pstate, src_name, now)?;
            if same_parent {
                dir::add(
                    &self.cache,
                    &self.jbd,
                    &self.balloc,
                    &mut pstate,
                    dst_name,
                    ino,
                    ftype,
                    now,
                )?;
            }
            pstate.mtime = now;
            let p = *pstate;
            drop(pstate);
            write_inode(
                &self.cache,
                &self.jbd,
                &self.layout,
                src_parent.ino,
                &p,
                now,
            );
        }
        if !same_parent {
            let mut pstate = dst_parent.state.write();
            dir::add(
                &self.cache,
                &self.jbd,
                &self.balloc,
                &mut pstate,
                dst_name,
                ino,
                ftype,
                now,
            )?;
            pstate.mtime = now;
            let p = *pstate;
            drop(pstate);
            write_inode(
                &self.cache,
                &self.jbd,
                &self.layout,
                dst_parent.ino,
                &p,
                now,
            );
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.env.charge_syscall();
        let _lin = self.obs.lineage().bg_scope();
        self.jbd_commit(obsv::DrainKind::Sync);
        self.cache.flush_all(obsv::DrainKind::Sync);
        self.bd.flush();
        Ok(())
    }

    fn unmount(&self) -> Result<()> {
        self.env.charge_syscall();
        let _lin = self.obs.lineage().bg_scope();
        self.jbd_commit(obsv::DrainKind::Sync);
        self.cache.flush_all(obsv::DrainKind::Sync);
        layout::set_clean(&self.cache, true, self.now());
        self.cache.flush_all(obsv::DrainKind::Sync);
        self.bd.flush();
        Ok(())
    }

    fn tick(&self, now_ns: u64) {
        let last = self.last_commit.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) >= self.opts.periodic_commit_ns {
            self.last_commit.store(now_ns, Ordering::Relaxed);
            let _lin = self.obs.lineage().bg_scope();
            self.jbd_commit(obsv::DrainKind::Lazy);
            self.cache.flush_older_than(now_ns, self.opts.dirty_age_ns);
        }
    }
}

impl obsv::Introspect for Extfs {
    fn snapshot(&self) -> obsv::FsSnapshot {
        let (cached, dirty, hits, misses) = self.cache.usage();
        obsv::FsSnapshot {
            system: fskit::FileSystem::name(self).into(),
            at_ns: self.env.now(),
            cache: Some(obsv::CacheSnap {
                capacity_pages: self.cache.capacity() as u64,
                cached_pages: cached as u64,
                dirty_pages: dirty as u64,
                hits,
                misses,
            }),
            lineage: self
                .obs
                .lineage()
                .enabled()
                .then(|| self.obs.lineage().snap()),
            ..obsv::FsSnapshot::default()
        }
    }

    fn audit(&self) -> obsv::AuditReport {
        let mut rep = obsv::AuditReport::new(self.env.now());
        let (cached, dirty, _, _) = self.cache.usage();
        // cache.accounting: dirty pages are a subset of cached pages, which
        // never exceed the page-cache capacity.
        rep.check_le(12, 0, 0, dirty as u64, cached as u64);
        rep.check_le(12, 0, 0, cached as u64, self.cache.capacity() as u64);
        rep
    }
}

impl obsv::MetricSource for Extfs {
    fn collect(&self, out: &mut dyn obsv::Visitor) {
        obsv::MetricSource::collect(&*self.obs, out);
        out.counter("extfs_jbd_commits", self.jbd.commits());
        out.gauge("extfs_jbd_running", self.jbd.running_len() as u64);
        out.gauge("extfs_free_blocks", self.free_blocks());
        obsv::Introspect::snapshot(self).visit_gauges("extfs_", out);
    }
}

#[cfg(test)]
mod tests;
