//! A fio-like microbenchmark actor (the paper's Fig 1 workload): random
//! reads and writes over a preallocated file at a configurable I/O size,
//! with a 1:2 read:write ratio by default.

use fskit::{Fd, OpenFlags, Result};
use rand::Rng;

use crate::runner::{Actor, Ctx};

/// fio job parameters.
#[derive(Debug, Clone)]
pub struct FioParams {
    /// Target file path.
    pub path: String,
    /// File size in bytes (preallocated on first step).
    pub file_size: u64,
    /// I/O transfer size in bytes.
    pub iosize: usize,
    /// Reads per `read_ratio + write_ratio` operations (paper: 1:2).
    pub read_ratio: u32,
    pub write_ratio: u32,
}

impl FioParams {
    /// The paper's default mix at the given I/O size.
    pub fn new(path: &str, file_size: u64, iosize: usize) -> FioParams {
        FioParams {
            path: path.to_string(),
            file_size,
            iosize,
            read_ratio: 1,
            write_ratio: 2,
        }
    }
}

/// The fio actor.
pub struct Fio {
    params: FioParams,
    fd: Option<Fd>,
    buf: Vec<u8>,
}

impl Fio {
    /// Creates a fio job.
    pub fn new(params: FioParams) -> Fio {
        Fio {
            fd: None,
            buf: Vec::new(),
            params,
        }
    }

    /// Preallocates the target file outside the measured run so the
    /// steady-state breakdown (Fig 1) is not polluted by setup writes.
    pub fn setup(fs: &dyn fskit::FileSystem, params: &FioParams) -> Result<()> {
        let fd = fs.open(&params.path, OpenFlags::RDWR | OpenFlags::CREATE)?;
        let chunk = vec![0u8; 1 << 20];
        let mut off = fs.fstat(fd)?.size;
        while off < params.file_size {
            let n = ((params.file_size - off) as usize).min(chunk.len());
            fs.write(fd, off, &chunk[..n])?;
            off += n as u64;
        }
        fs.close(fd)
    }
}

impl Actor for Fio {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.fd.is_none() {
            let fd = ctx.open(&self.params.path, OpenFlags::RDWR | OpenFlags::CREATE)?;
            // Preallocate whatever `setup` has not already materialized.
            let preallocated = ctx.fstat(fd)?.size;
            let chunk = vec![0u8; 1 << 20];
            let mut off = preallocated;
            while off < self.params.file_size {
                let n = ((self.params.file_size - off) as usize).min(chunk.len());
                ctx.write(fd, off, &chunk[..n])?;
                off += n as u64;
            }
            self.fd = Some(fd);
        }
        let fd = self.fd.unwrap();
        let span = self
            .params
            .file_size
            .saturating_sub(self.params.iosize as u64);
        let off = if span == 0 {
            0
        } else {
            ctx.rng.gen_range(0..=span)
        };
        self.buf.resize(self.params.iosize, 0x77);
        let total = self.params.read_ratio + self.params.write_ratio;
        if ctx.rng.gen_range(0..total) < self.params.read_ratio {
            ctx.read(fd, off, &mut self.buf.clone())?;
        } else {
            ctx.write(fd, off, &self.buf)?;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunLimit, Runner};
    use crate::OpKind;
    use nvmm::{CostModel, NvmmDevice, SimEnv, BLOCK_SIZE};
    use pmfs::{Pmfs, PmfsOptions};

    #[test]
    fn mix_is_one_to_two() {
        let env = SimEnv::new_virtual(CostModel::default());
        let dev = NvmmDevice::new(env.clone(), 16384 * BLOCK_SIZE);
        let fs = Pmfs::mkfs(
            dev,
            PmfsOptions {
                journal_blocks: 64,
                inode_count: 64,
            },
        )
        .unwrap();
        env.rebase();
        let runner = Runner::new(env, fs);
        let fio = Fio::new(FioParams::new("/job", 4 << 20, 4096));
        let r = runner.run(vec![Box::new(fio)], RunLimit::steps(601), 13);
        // 601 I/O steps plus the 4 MiB preallocation (4 chunked writes).
        let reads = r.op_count(OpKind::Read);
        let writes = r.op_count(OpKind::Write);
        assert_eq!(reads + writes, 601 + (4 << 20) / (1 << 20));
        let ratio = writes as f64 / reads as f64;
        assert!((1.5..=2.8).contains(&ratio), "write/read ratio {ratio}");
    }
}
