//! Virtual time must be fully deterministic: identical seeds and configs
//! produce bit-identical reports across independent simulated machines.
//! Every figure in `EXPERIMENTS.md` depends on this property.

use std::sync::Arc;

use hinfs_suite::prelude::*;
use workloads::filebench::{FilebenchParams, Fileserver, Varmail};
use workloads::fileset::{Fileset, FilesetSpec};
use workloads::setups::{build, ObsvOptions, SystemConfig, SystemKind};
use workloads::traces::{TraceReplay, USR0};
use workloads::RunReport;

fn one_run(kind: SystemKind, seed: u64) -> RunReport {
    one_run_with(kind, seed, false, false)
}

fn one_run_with(kind: SystemKind, seed: u64, observed: bool, audited: bool) -> RunReport {
    one_run_cfg(
        kind,
        seed,
        ObsvOptions {
            timing: observed,
            spans: observed,
            audit: audited,
            ..ObsvOptions::none()
        },
    )
}

fn one_run_cfg(kind: SystemKind, seed: u64, obsv: ObsvOptions) -> RunReport {
    let audited = obsv.audit;
    let cfg = SystemConfig {
        device_bytes: 64 << 20,
        buffer_bytes: 2 << 20,
        cache_pages: 512,
        journal_blocks: 256,
        inode_count: 4096,
        obsv,
        ..SystemConfig::default()
    };
    let sys = build(kind, &cfg).unwrap();
    let set = Fileset::populate(&*sys.fs, FilesetSpec::new("/d", 48, 10, 16 << 10), 7).unwrap();
    sys.env.rebase();
    let params = FilebenchParams {
        iosize: 64 << 10,
        append_size: 4 << 10,
    };
    let actors: Vec<Box<dyn Actor>> = vec![
        Box::new(Fileserver::new(Arc::clone(&set), params)),
        Box::new(Varmail::new(Arc::clone(&set), params)),
        Box::new(TraceReplay::new(set, USR0, seed)),
    ];
    let r = Runner::new(sys.env.clone(), sys.fs.clone())
        .with_device(sys.dev.clone())
        .run(actors, RunLimit::duration_ms(100), seed);
    if audited {
        // Snapshots and a full audit pass are read-only; take them before
        // unmount so the run exercises both with the caches still warm.
        let intro = sys.introspect.as_ref().expect("system introspects");
        let snap = intro.snapshot();
        assert_eq!(snap, intro.snapshot(), "snapshotting is repeatable");
        let rep = intro.audit();
        assert!(rep.is_clean(), "audit violations: {:?}", rep.violations);
        if let Some(obs) = &sys.obs {
            assert_eq!(obs.audit_violations(), 0);
        }
    }
    sys.fs.unmount().unwrap();
    r
}

fn assert_identical(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.elapsed_ns, b.elapsed_ns, "{label}: elapsed");
    assert_eq!(a.metrics.steps, b.metrics.steps, "{label}: steps");
    assert_eq!(
        a.metrics.bytes_written, b.metrics.bytes_written,
        "{label}: bytes written"
    );
    assert_eq!(
        a.metrics.bytes_read, b.metrics.bytes_read,
        "{label}: bytes read"
    );
    assert_eq!(
        a.metrics.fsync_bytes, b.metrics.fsync_bytes,
        "{label}: fsync bytes"
    );
    assert_eq!(
        a.device.nvmm_bytes_written, b.device.nvmm_bytes_written,
        "{label}: device writes"
    );
    assert_eq!(a.ledger, b.ledger, "{label}: ledger");
    for op in workloads::metrics::ALL_OPS {
        assert_eq!(a.op_ns(op), b.op_ns(op), "{label}: {} time", op.label());
        assert_eq!(
            a.op_count(op),
            b.op_count(op),
            "{label}: {} count",
            op.label()
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let a = one_run(kind, 42);
        let b = one_run(kind, 42);
        assert_identical(&a, &b, kind.label());
    }
}

/// The observability layer (per-op timing + span attribution) only reads
/// the virtual clock — it never advances it — so enabling it must leave
/// every figure-relevant number bit-identical to an unobserved run.
#[test]
fn spans_and_timing_do_not_change_results() {
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let plain = one_run_with(kind, 42, false, false);
        let observed = one_run_with(kind, 42, true, true);
        assert_identical(&plain, &observed, kind.label());
    }
}

/// Snapshots are pure reads and the auditor only takes the regular locks,
/// so running with `obsv_audit` on (every fsync self-audits) and taking
/// snapshots mid-flight must not perturb a single figure-relevant number.
#[test]
fn snapshots_and_audit_do_not_change_results() {
    for kind in [SystemKind::Pmfs, SystemKind::Hinfs, SystemKind::Ext4Bd] {
        let plain = one_run_with(kind, 7, false, false);
        let audited = one_run_with(kind, 7, false, true);
        assert_identical(&plain, &audited, kind.label());
    }
}

/// The flight recorder composes every read-only hook (timing, trace,
/// spans, contention, per-op records) and adds its own TLS frame and
/// reservoirs — all of it observation. Arming the full
/// `ObsvOptions::flight()` preset must not change a single result bit
/// relative to an unobserved run.
#[test]
fn flight_recorder_does_not_change_results() {
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let plain = one_run_cfg(kind, 42, ObsvOptions::none());
        let flown = one_run_cfg(kind, 42, ObsvOptions::flight());
        assert_identical(&plain, &flown, kind.label());
    }
}

/// The lineage ledger (ack stamps, drain accounting, lag histograms)
/// only reads the virtual clock and the trace sequence — stamping and
/// draining never charge time. Arming it on top of the flight preset
/// must leave every figure-relevant number bit-identical.
#[test]
fn lineage_tracking_does_not_change_results() {
    for kind in [
        SystemKind::Pmfs,
        SystemKind::Hinfs,
        SystemKind::Ext4Bd,
        SystemKind::Ext4Dax,
    ] {
        let plain = one_run_cfg(kind, 42, ObsvOptions::none());
        let traced = one_run_cfg(kind, 42, ObsvOptions::flight().with_lineage());
        assert_identical(&plain, &traced, kind.label());
    }
}

#[test]
fn different_seeds_differ() {
    let a = one_run(SystemKind::Hinfs, 1);
    let b = one_run(SystemKind::Hinfs, 2);
    assert_ne!(
        (a.elapsed_ns, a.metrics.bytes_written),
        (b.elapsed_ns, b.metrics.bytes_written),
        "seeded runs should explore different schedules"
    );
}
