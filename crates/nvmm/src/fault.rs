//! Fault injection and crash-point enumeration hooks.
//!
//! Every durable store on a [`crate::NvmmDevice`] passes a *persistence
//! boundary*: the instant at which the touched cachelines join the
//! persistence domain. A [`FaultPlan`] installed on the device's
//! [`FaultHook`] observes those boundaries and can
//!
//! - **record** them as a numbered crash schedule (one [`BoundaryRec`] per
//!   boundary), which is how the `faultfs` enumerator sizes a sweep;
//! - **crash** the run at boundary `N` by unwinding with a [`CrashSignal`]
//!   panic payload — the store that completed boundary `N` is durable, every
//!   later store never happens, exactly like pulling the power cord between
//!   two instructions;
//! - **inject** softer faults that file-system layers consult on their error
//!   paths: journal-full backpressure, allocation failure (ENOSPC), and
//!   writeback-thread stalls.
//!
//! With no plan installed the hook costs one relaxed atomic load per
//! boundary, so the instrumentation is free outside fault runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use obsv::{TraceEvent, TraceRing};

use crate::device::NvmmDevice;

/// Panic payload used to simulate power loss at a persistence boundary.
///
/// The crash enumerator wraps each scripted operation in
/// `std::panic::catch_unwind` and downcasts the payload: a `CrashSignal`
/// means the injected crash fired; anything else is a real bug and is
/// resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The 1-based boundary number the crash fired at.
    pub boundary: u64,
}

/// What kind of durable event a boundary (or schedule entry) was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// A non-temporal store ([`NvmmDevice::write_persist`] /
    /// [`NvmmDevice::zero_persist`]): durable on completion.
    Persist,
    /// A [`NvmmDevice::clflush`] that persisted at least one pending line.
    Flush,
    /// A store fence. Fences order stores but add no new durable state, so
    /// they appear in the recorded schedule for readability without being
    /// numbered (crashing "at" a fence equals crashing after the previous
    /// persist).
    Fence,
}

impl BoundaryKind {
    /// Stable label for schedule dumps.
    pub fn label(self) -> &'static str {
        match self {
            BoundaryKind::Persist => "persist",
            BoundaryKind::Flush => "flush",
            BoundaryKind::Fence => "fence",
        }
    }
}

/// One entry of a recorded crash schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryRec {
    /// 1-based crash-point number; `0` for fences (not crash-eligible).
    pub index: u64,
    /// What made this boundary.
    pub kind: BoundaryKind,
    /// Device offset of the store (0 for fences).
    pub off: u64,
    /// Cachelines persisted at this boundary.
    pub lines: usize,
    /// Simulated time of the boundary.
    pub at_ns: u64,
}

/// Injectable fault classes beyond power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Journal admission refused: `Journal::begin`/`log_range` return
    /// `FsError::JournalFull`.
    JournalFull,
    /// Block allocation refused: allocators return `NoSpace`.
    Enospc,
    /// Background writeback suppressed: periodic/watermark passes are
    /// skipped while the stall is active (foreground reclaim still runs).
    WritebackStall,
}

impl InjectedFault {
    /// Stable numeric code used in trace events.
    pub fn code(self) -> u64 {
        match self {
            InjectedFault::JournalFull => 1,
            InjectedFault::Enospc => 2,
            InjectedFault::WritebackStall => 3,
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InjectedFault::JournalFull => "journal_full",
            InjectedFault::Enospc => "enospc",
            InjectedFault::WritebackStall => "writeback_stall",
        }
    }
}

/// A fault-injection plan shared between the harness and the layers it
/// instruments. All switches are live: the harness flips them mid-run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Persistence boundaries seen since the last `reset_boundaries`.
    counter: AtomicU64,
    /// Crash when `counter` reaches this value; 0 = disabled.
    crash_at: AtomicU64,
    recording: AtomicBool,
    schedule: Mutex<Vec<BoundaryRec>>,
    journal_unavailable: AtomicBool,
    fail_alloc: AtomicBool,
    stall_writeback: AtomicBool,
    crashes_injected: AtomicU64,
    faults_injected: AtomicU64,
    trace: Mutex<Option<Arc<TraceRing>>>,
}

impl FaultPlan {
    /// A fresh plan with everything off.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Attaches a trace ring; injected faults emit
    /// [`TraceEvent::FaultInjected`] into it.
    pub fn set_trace(&self, ring: Arc<TraceRing>) {
        *self.trace.lock() = Some(ring);
    }

    fn emit(&self, at_ns: u64, ev: impl FnOnce() -> TraceEvent) {
        if let Some(ring) = self.trace.lock().as_ref() {
            ring.emit(at_ns, ev);
        }
    }

    /// Starts recording a crash schedule from boundary 1.
    pub fn start_recording(&self) {
        self.schedule.lock().clear();
        self.counter.store(0, Ordering::Relaxed);
        self.recording.store(true, Ordering::Relaxed);
    }

    /// Stops recording and returns the schedule.
    pub fn stop_recording(&self) -> Vec<BoundaryRec> {
        self.recording.store(false, Ordering::Relaxed);
        std::mem::take(&mut self.schedule.lock())
    }

    /// Arms a crash at 1-based boundary `n` (counting restarts from zero).
    pub fn arm_crash(&self, n: u64) {
        assert!(n > 0, "boundary numbers are 1-based");
        self.counter.store(0, Ordering::Relaxed);
        self.crash_at.store(n, Ordering::Relaxed);
    }

    /// Disarms a pending crash (keeps the boundary counter running).
    pub fn disarm_crash(&self) {
        self.crash_at.store(0, Ordering::Relaxed);
    }

    /// Boundaries observed since the counter was last reset.
    pub fn boundaries_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Switches journal-full backpressure injection.
    pub fn set_journal_unavailable(&self, on: bool) {
        self.journal_unavailable.store(on, Ordering::Relaxed);
    }

    /// Switches allocation-failure (ENOSPC) injection.
    pub fn set_fail_alloc(&self, on: bool) {
        self.fail_alloc.store(on, Ordering::Relaxed);
    }

    /// Switches background-writeback stalling.
    pub fn set_stall_writeback(&self, on: bool) {
        self.stall_writeback.store(on, Ordering::Relaxed);
    }

    /// Crashes fired by this plan.
    pub fn crashes_injected(&self) -> u64 {
        self.crashes_injected.load(Ordering::Relaxed)
    }

    /// Soft faults (journal-full, ENOSPC, stalls) this plan injected.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    fn note_fault(&self, fault: InjectedFault, at_ns: u64) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        self.emit(at_ns, || TraceEvent::FaultInjected {
            kind: fault.code(),
            at_boundary: self.counter.load(Ordering::Relaxed),
        });
    }

    /// Called by the device at every persistence boundary. Panics with a
    /// [`CrashSignal`] when the armed crash point is reached.
    pub(crate) fn on_boundary(&self, kind: BoundaryKind, off: u64, lines: usize, at_ns: u64) {
        if matches!(kind, BoundaryKind::Fence) {
            if self.recording.load(Ordering::Relaxed) {
                self.schedule.lock().push(BoundaryRec {
                    index: 0,
                    kind,
                    off,
                    lines,
                    at_ns,
                });
            }
            return;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.recording.load(Ordering::Relaxed) {
            self.schedule.lock().push(BoundaryRec {
                index: n,
                kind,
                off,
                lines,
                at_ns,
            });
        }
        let at = self.crash_at.load(Ordering::Relaxed);
        if at != 0 && n == at {
            self.crash_at.store(0, Ordering::Relaxed);
            self.crashes_injected.fetch_add(1, Ordering::Relaxed);
            self.emit(at_ns, || TraceEvent::FaultInjected {
                kind: 0,
                at_boundary: n,
            });
            std::panic::panic_any(CrashSignal { boundary: n });
        }
    }
}

/// The per-device mount point for a [`FaultPlan`]. Shareable (cloned into
/// allocators and journals at mount) so every layer consults the *current*
/// plan even when plans are swapped between runs.
#[derive(Debug, Default)]
pub struct FaultHook {
    armed: AtomicBool,
    plan: Mutex<Option<Arc<FaultPlan>>>,
}

impl FaultHook {
    /// A hook with no plan installed.
    pub fn new() -> Arc<FaultHook> {
        Arc::new(FaultHook::default())
    }

    /// Installs `plan`; subsequent boundaries and consults go to it.
    pub fn install(&self, plan: Arc<FaultPlan>) {
        *self.plan.lock() = Some(plan);
        self.armed.store(true, Ordering::Release);
    }

    /// Removes the current plan; the hook goes back to costing one relaxed
    /// load per boundary.
    pub fn clear(&self) {
        self.armed.store(false, Ordering::Release);
        *self.plan.lock() = None;
    }

    /// The currently installed plan, if any.
    #[inline]
    pub fn plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        self.plan.lock().clone()
    }
}

/// Whether journal admission should fail right now on `dev` (journal-full
/// backpressure injection). Counts and traces the injection when it fires.
pub fn journal_blocked(dev: &NvmmDevice) -> bool {
    match dev.fault_hook().plan() {
        Some(plan) if plan.journal_unavailable.load(Ordering::Relaxed) => {
            plan.note_fault(InjectedFault::JournalFull, dev.env().now());
            true
        }
        _ => false,
    }
}

/// Whether block/inode allocation should fail right now on `dev` (ENOSPC
/// injection). Counts and traces the injection when it fires.
pub fn alloc_blocked(dev: &NvmmDevice) -> bool {
    match dev.fault_hook().plan() {
        Some(plan) if plan.fail_alloc.load(Ordering::Relaxed) => {
            plan.note_fault(InjectedFault::Enospc, dev.env().now());
            true
        }
        _ => false,
    }
}

/// Whether background writeback is stalled on `dev`. Counts and traces each
/// suppressed pass.
pub fn writeback_stalled(dev: &NvmmDevice) -> bool {
    match dev.fault_hook().plan() {
        Some(plan) if plan.stall_writeback.load(Ordering::Relaxed) => {
            plan.note_fault(InjectedFault::WritebackStall, dev.env().now());
            true
        }
        _ => false,
    }
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) used to pick
/// partial-pending line subsets for torn-state crashes.
pub fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(x.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::ledger::Cat;
    use crate::time::SimEnv;

    fn dev() -> Arc<NvmmDevice> {
        NvmmDevice::new_tracked(SimEnv::new_virtual(CostModel::default()), 1 << 16)
    }

    #[test]
    fn recording_numbers_persist_boundaries() {
        let d = dev();
        let plan = FaultPlan::new();
        d.fault_hook().install(plan.clone());
        plan.start_recording();
        d.write_persist(Cat::Meta, 0, &[1u8; 64]); // boundary 1
        d.write_cached(Cat::Journal, 4096, &[2u8; 64]); // not a boundary
        d.clflush(Cat::Journal, 4096, 64); // boundary 2
        d.sfence(); // recorded, not numbered
        d.clflush(Cat::Journal, 4096, 64); // nothing pending: no boundary
        d.zero_persist(Cat::Meta, 8192, 64); // boundary 3
        let sched = plan.stop_recording();
        assert_eq!(plan.boundaries_seen(), 3);
        let indices: Vec<u64> = sched.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![1, 2, 0, 3]);
        assert_eq!(sched[2].kind, BoundaryKind::Fence);
        d.fault_hook().clear();
    }

    #[test]
    fn armed_crash_fires_at_boundary() {
        let d = dev();
        let plan = FaultPlan::new();
        d.fault_hook().install(plan.clone());
        plan.arm_crash(2);
        d.write_persist(Cat::Meta, 0, &[1u8; 64]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.write_persist(Cat::Meta, 64, &[2u8; 64]);
        }))
        .expect_err("crash must fire at boundary 2");
        let sig = err.downcast_ref::<CrashSignal>().expect("crash signal");
        assert_eq!(sig.boundary, 2);
        assert_eq!(plan.crashes_injected(), 1);
        // The store that completed boundary 2 is durable.
        d.crash();
        let mut b = [0u8; 64];
        d.peek(64, &mut b);
        assert_eq!(b, [2u8; 64]);
        // Disarmed after firing: later stores proceed.
        d.write_persist(Cat::Meta, 128, &[3u8; 64]);
    }

    #[test]
    fn soft_fault_consults() {
        let d = dev();
        assert!(!journal_blocked(&d), "no plan installed");
        let plan = FaultPlan::new();
        d.fault_hook().install(plan.clone());
        assert!(!journal_blocked(&d));
        assert!(!alloc_blocked(&d));
        assert!(!writeback_stalled(&d));
        plan.set_journal_unavailable(true);
        plan.set_fail_alloc(true);
        plan.set_stall_writeback(true);
        assert!(journal_blocked(&d));
        assert!(alloc_blocked(&d));
        assert!(writeback_stalled(&d));
        assert_eq!(plan.faults_injected(), 3);
        plan.set_journal_unavailable(false);
        assert!(!journal_blocked(&d));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(7, 42), mix(7, 42));
        assert_ne!(mix(7, 42), mix(8, 42));
        let ones: u32 = (0..64).map(|i| (mix(1, i) & 1) as u32).sum();
        assert!((16..=48).contains(&ones), "bit-0 balance: {ones}");
    }
}
