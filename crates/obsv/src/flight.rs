//! Per-op flight recorder: one record per instrumented operation,
//! composing the span and contention hooks into a tail-latency anatomy.
//!
//! The histograms say *what* the p99 is; the span matrix says where time
//! goes *on average*. Neither says why one particular slow op was slow.
//! A [`FlightRecorder`] keeps, for the slowest operations of each
//! [`OpKind`], a full [`FlightRecord`]: per-phase exclusive ns, per-site
//! lock-wait ns, stall events, fence and persisted-byte counts, the
//! buffer-pool shard the op hit, the group-commit batch it rode in, and
//! the trace-ring seq range covering its lifetime. Records double as
//! *exemplars* for the latency histograms — [`FlightSnapshot::cohort`]
//! selects the records whose latency falls in the p99/p999 buckets, so a
//! tail quantile links to concrete anatomies.
//!
//! Cost rules, matching the rest of `obsv`:
//!
//! - **Off by default, one relaxed load when off.** [`FlightRecorder::begin`]
//!   checks a relaxed `AtomicBool`; every `note_*` hook checks a
//!   thread-local flag that is only ever set between an enabled
//!   `begin`/`finish` pair, so the off path is one TLS bool read.
//! - **Allocation-free on the record path.** The in-flight record is a
//!   fixed-size thread-local; retirement into the per-thread reservoir
//!   shards replaces the shard's current minimum in place once the
//!   top-K slots are full. The only allocations are the lazy first-use
//!   reservoir boxes.
//! - **Reads clocks, never advances them.** All timestamps are handed in
//!   by the `timed()` wrappers that already read the simulation clock for
//!   the latency histograms, so enabling flight changes no result bit
//!   (proven by `tests/determinism.rs`).

use crate::histo::bucket_of;
use crate::span::BG_ROW;
use crate::{thread_ordinal, OpKind, Phase, Site, ALL_PHASES, ALL_SITES};
use crate::{COLLECTION_SHARDS, NOPS, NPHASES, NSITES};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Records kept per op kind per collection shard. The merged snapshot
/// keeps [`FLIGHT_MERGED_TOPK`]; any globally-top-K record necessarily
/// survives its own shard's top-K pruning, so the merge is exact up to
/// `FLIGHT_TOPK` records per shard.
pub const FLIGHT_TOPK: usize = 8;

/// Records kept per op kind after merging the collection shards.
pub const FLIGHT_MERGED_TOPK: usize = 16;

/// Shard id meaning "this op touched no buffer-pool shard".
pub const NO_SHARD: u32 = u32::MAX;

/// The complete anatomy of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// The op kind.
    pub op: OpKind,
    /// When the op started, simulated ns.
    pub at_ns: u64,
    /// Total op latency, simulated ns.
    pub total_ns: u64,
    /// Buffer-pool / allocator shard the op touched last, or
    /// [`NO_SHARD`].
    pub shard: u32,
    /// Largest group-commit batch flushed inside the op (0 = none).
    pub batch: u32,
    /// Store fences issued while the op was in flight.
    pub fences: u32,
    /// Fences *saved* by group-commit coalescing (`sfence_coalesced(n)`
    /// counts as 1 fence issued and `n-1` coalesced).
    pub fences_coalesced: u32,
    /// Stall events (`stall.*` sites) the op absorbed: writeback
    /// interference, journal-full relief, bandwidth throttling.
    pub stall_events: u32,
    /// Bytes persisted to NVMM (cacheline granularity) by the op.
    pub persisted_bytes: u64,
    /// Trace-ring seq ticket when the op began.
    pub seq_start: u64,
    /// Trace-ring seq ticket when the op finished; `seq_start..seq_end`
    /// bounds the ring events emitted while the op was in flight.
    pub seq_end: u64,
    /// Exclusive simulated ns per [`Phase`]; sums to `total_ns` (the
    /// remainder outside named phases is folded into [`Phase::Other`]).
    pub phase_ns: [u64; NPHASES],
    /// Blocked simulated ns per [`Site`] (lock waits, condvar waits,
    /// stall sites).
    pub wait_ns: [u64; NSITES],
}

impl FlightRecord {
    const EMPTY: FlightRecord = FlightRecord {
        op: OpKind::Open,
        at_ns: 0,
        total_ns: 0,
        shard: NO_SHARD,
        batch: 0,
        fences: 0,
        fences_coalesced: 0,
        stall_events: 0,
        persisted_bytes: 0,
        seq_start: 0,
        seq_end: 0,
        phase_ns: [0; NPHASES],
        wait_ns: [0; NSITES],
    };

    fn start(op: OpKind, at_ns: u64, seq_start: u64) -> FlightRecord {
        FlightRecord {
            op,
            at_ns,
            seq_start,
            ..FlightRecord::EMPTY
        }
    }

    /// The latency-histogram bucket this record's total falls in — the
    /// link between an exemplar and the quantile math.
    pub fn bucket(&self) -> usize {
        bucket_of(self.total_ns)
    }

    /// The `k` largest nonzero phase contributions, largest first.
    pub fn top_phases(&self, k: usize) -> Vec<(Phase, u64)> {
        let mut v: Vec<(Phase, u64)> = ALL_PHASES
            .iter()
            .map(|&p| (p, self.phase_ns[p as usize]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by_key(|&(p, ns)| (std::cmp::Reverse(ns), p as usize));
        v.truncate(k);
        v
    }

    /// The `k` largest nonzero per-site waits, largest first.
    pub fn top_waits(&self, k: usize) -> Vec<(Site, u64)> {
        let mut v: Vec<(Site, u64)> = ALL_SITES
            .iter()
            .map(|&s| (s, self.wait_ns[s as usize]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by_key(|&(s, ns)| (std::cmp::Reverse(ns), s as usize));
        v.truncate(k);
        v
    }
}

/// The thread-local in-flight record. `active` mirrors into the cheap
/// [`ACTIVE`] cell that every `note_*` hook checks first; `owner` pins
/// the frame to the recorder that opened it so a nested op on a *second*
/// enabled recorder (HiNFS delegating to PMFS with both flights on)
/// neither steals nor retires the outer frame.
struct FlightFrame {
    active: bool,
    owner: u64,
    depth: u32,
    rec: FlightRecord,
}

thread_local! {
    /// Fast gate for the `note_*` hooks: true only between an enabled
    /// `begin` and its matching `finish` on this thread.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static FRAME: RefCell<FlightFrame> = const {
        RefCell::new(FlightFrame {
            active: false,
            owner: 0,
            depth: 0,
            rec: FlightRecord::EMPTY,
        })
    };
}

/// Process-unique recorder ids (Arc addresses can be reused; a counter
/// cannot).
static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

/// Adds exclusive phase time to the in-flight record. Called by the span
/// layer on every scope pop; `row == BG_ROW` charges (detached writeback)
/// are not an op's own time and are skipped.
#[inline]
pub(crate) fn note_phase(row: usize, phase: Phase, excl_ns: u64) {
    if row == BG_ROW || !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| f.borrow_mut().rec.phase_ns[phase as usize] += excl_ns);
}

/// Adds blocked time at `site` to the in-flight record; `stall.*` sites
/// also tick the stall-event count. Called by the contention layer on
/// every wait sample.
#[inline]
pub(crate) fn note_wait(site: Site, wait_ns: u64) {
    if !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| {
        let mut f = f.borrow_mut();
        f.rec.wait_ns[site as usize] += wait_ns;
        if matches!(
            site,
            Site::StallWriteback | Site::StallJournalFull | Site::StallThrottle
        ) {
            f.rec.stall_events += 1;
        }
    });
}

/// Books one fence covering `coalesced` logical transactions (`sfence`
/// passes 1; `sfence_coalesced(n)` passes `n`, crediting `n-1` saved
/// fences).
#[inline]
pub fn note_fence(coalesced: u64) {
    crate::lineage::frame_note_fence();
    if !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| {
        let mut f = f.borrow_mut();
        f.rec.fences += 1;
        f.rec.fences_coalesced += coalesced.saturating_sub(1) as u32;
    });
}

/// Books `bytes` persisted to NVMM (cacheline granularity).
#[inline]
pub fn note_persisted(bytes: u64) {
    crate::lineage::frame_note_persisted(bytes);
    if !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| f.borrow_mut().rec.persisted_bytes += bytes);
}

/// Books the buffer-pool / allocator shard the op is touching
/// (last-wins; most ops touch exactly one).
#[inline]
pub fn note_shard(shard: u32) {
    if !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| f.borrow_mut().rec.shard = shard);
}

/// Books a group-commit batch of `n` transactions flushed inside the op
/// (max-wins).
#[inline]
pub fn note_batch(n: u32) {
    if !ACTIVE.get() {
        return;
    }
    FRAME.with(|f| {
        let mut f = f.borrow_mut();
        f.rec.batch = f.rec.batch.max(n);
    });
}

/// One collection shard's reservoirs: a top-K vector per op kind,
/// boxed and lazily allocated on the shard's first retirement.
type ShardReservoirs = Mutex<Option<Box<[Vec<FlightRecord>; NOPS]>>>;

/// Per-file-system flight recorder: top-K-slowest reservoirs per op
/// kind, sharded per thread ordinal like the slow-op log.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    id: u64,
    recorded: AtomicU64,
    shards: [ShardReservoirs; COLLECTION_SHARDS],
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A disabled, empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            enabled: AtomicBool::new(false),
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            recorded: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(None)),
        }
    }

    /// Whether records are being kept — one relaxed load, the whole cost
    /// of `begin`/`finish` while disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording. Leaves accumulated records in place.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Operations retired into the reservoirs so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Opens the flight frame for an op starting at `at_ns` with the
    /// trace ring at ticket `seq_start`. Nested calls on the same
    /// recorder deepen the frame; a frame already owned by a *different*
    /// recorder is left untouched (the outermost instrumented layer owns
    /// the anatomy).
    #[inline]
    pub fn begin(&self, op: OpKind, at_ns: u64, seq_start: u64) {
        if !self.is_enabled() {
            return;
        }
        FRAME.with(|f| {
            let mut f = f.borrow_mut();
            if f.active {
                if f.owner == self.id {
                    f.depth += 1;
                }
                return;
            }
            f.active = true;
            f.owner = self.id;
            f.depth = 1;
            f.rec = FlightRecord::start(op, at_ns, seq_start);
            ACTIVE.set(true);
        });
    }

    /// Closes the flight frame and retires the record when the outermost
    /// `begin` unwinds. The op's time in no named phase is folded into
    /// [`Phase::Other`] here, because the span layer books the op-scope
    /// remainder only after the `timed()` closure (and this call) return.
    pub fn finish(&self, total_ns: u64, seq_end: u64) {
        if !self.is_enabled() {
            return;
        }
        let rec = FRAME.with(|f| {
            let mut f = f.borrow_mut();
            if !f.active || f.owner != self.id {
                return None;
            }
            f.depth -= 1;
            if f.depth > 0 {
                return None;
            }
            f.active = false;
            ACTIVE.set(false);
            let mut rec = f.rec;
            rec.total_ns = total_ns;
            rec.seq_end = seq_end;
            let phased: u64 = rec.phase_ns.iter().sum();
            rec.phase_ns[Phase::Other as usize] += total_ns.saturating_sub(phased);
            Some(rec)
        });
        if let Some(rec) = rec {
            self.retire(rec);
        }
    }

    /// Inserts a finished record into the caller's reservoir shard,
    /// replacing that shard's fastest record once the op's K slots are
    /// full.
    fn retire(&self, rec: FlightRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.shards[thread_ordinal() % COLLECTION_SHARDS]
            .lock()
            .unwrap();
        let slots = guard.get_or_insert_with(|| {
            Box::new(std::array::from_fn(|_| Vec::with_capacity(FLIGHT_TOPK)))
        });
        let v = &mut slots[rec.op as usize];
        if v.len() < FLIGHT_TOPK {
            v.push(rec);
        } else if let Some(min) = v.iter_mut().min_by_key(|r| r.total_ns) {
            if rec.total_ns > min.total_ns {
                *min = rec;
            }
        }
    }

    /// Drops every record and zeroes the retire counter (timeline
    /// rebasing, like `Histo::reset`).
    pub fn reset(&self) {
        for shard in &self.shards {
            *shard.lock().unwrap() = None;
        }
        self.recorded.store(0, Ordering::Relaxed);
    }

    /// Merges the reservoir shards into a frozen snapshot: per op kind,
    /// the up-to-[`FLIGHT_MERGED_TOPK`] slowest records, slowest first,
    /// deterministically ordered.
    pub fn snapshot(&self) -> FlightSnapshot {
        let mut per_op: Vec<Vec<FlightRecord>> = vec![Vec::new(); NOPS];
        for shard in &self.shards {
            if let Some(slots) = shard.lock().unwrap().as_ref() {
                for (op, v) in slots.iter().enumerate() {
                    per_op[op].extend_from_slice(v);
                }
            }
        }
        for v in &mut per_op {
            v.sort_by_key(|r| (std::cmp::Reverse(r.total_ns), r.at_ns, r.seq_start));
            v.truncate(FLIGHT_MERGED_TOPK);
        }
        FlightSnapshot {
            per_op,
            recorded: self.recorded(),
        }
    }
}

/// A frozen copy of a [`FlightRecorder`]'s reservoirs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSnapshot {
    per_op: Vec<Vec<FlightRecord>>,
    recorded: u64,
}

impl Default for FlightSnapshot {
    fn default() -> Self {
        FlightSnapshot {
            per_op: vec![Vec::new(); NOPS],
            recorded: 0,
        }
    }
}

impl FlightSnapshot {
    /// Operations retired when the snapshot was taken.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The kept records of one op kind, slowest first.
    pub fn records(&self, op: OpKind) -> &[FlightRecord] {
        &self.per_op[op as usize]
    }

    /// Every kept record across all op kinds, slowest first.
    pub fn all(&self) -> Vec<&FlightRecord> {
        let mut v: Vec<&FlightRecord> = self.per_op.iter().flatten().collect();
        v.sort_by_key(|r| (std::cmp::Reverse(r.total_ns), r.at_ns, r.seq_start));
        v
    }

    /// The exemplar cohort of a quantile: every kept record whose
    /// latency bucket is at (or above) the bucket `quantile_ns` falls
    /// in. With `quantile_ns` from the merged histogram's `quantile(q)`,
    /// these are the concrete anatomies behind the reported pXX.
    pub fn cohort(&self, quantile_ns: u64) -> Vec<&FlightRecord> {
        let floor = bucket_of(quantile_ns);
        let mut v: Vec<&FlightRecord> = self
            .per_op
            .iter()
            .flatten()
            .filter(|r| r.bucket() >= floor)
            .collect();
        v.sort_by_key(|r| (std::cmp::Reverse(r.total_ns), r.at_ns, r.seq_start));
        v
    }
}

/// Aggregate anatomy of a set of records (an exemplar cohort): summed
/// phase and wait time, event counts, and the covering trace-seq range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailAnatomy {
    /// Records aggregated.
    pub count: u64,
    /// Summed total latency.
    pub total_ns: u64,
    /// Summed exclusive ns per [`Phase`].
    pub phase_ns: [u64; NPHASES],
    /// Summed blocked ns per [`Site`].
    pub wait_ns: [u64; NSITES],
    /// Summed fences issued.
    pub fences: u64,
    /// Summed fences saved by coalescing.
    pub fences_coalesced: u64,
    /// Summed stall events.
    pub stall_events: u64,
    /// Summed persisted bytes.
    pub persisted_bytes: u64,
    /// Largest group-commit batch seen.
    pub max_batch: u32,
    /// Smallest `seq_start` across the cohort.
    pub seq_lo: u64,
    /// Largest `seq_end` across the cohort.
    pub seq_hi: u64,
}

impl Default for TailAnatomy {
    fn default() -> Self {
        TailAnatomy {
            count: 0,
            total_ns: 0,
            phase_ns: [0; NPHASES],
            wait_ns: [0; NSITES],
            fences: 0,
            fences_coalesced: 0,
            stall_events: 0,
            persisted_bytes: 0,
            max_batch: 0,
            seq_lo: 0,
            seq_hi: 0,
        }
    }
}

impl TailAnatomy {
    /// Sums `records` into one anatomy.
    pub fn aggregate<'a>(records: impl IntoIterator<Item = &'a FlightRecord>) -> TailAnatomy {
        let mut a = TailAnatomy {
            seq_lo: u64::MAX,
            ..TailAnatomy::default()
        };
        for r in records {
            a.count += 1;
            a.total_ns += r.total_ns;
            for p in 0..NPHASES {
                a.phase_ns[p] += r.phase_ns[p];
            }
            for s in 0..NSITES {
                a.wait_ns[s] += r.wait_ns[s];
            }
            a.fences += r.fences as u64;
            a.fences_coalesced += r.fences_coalesced as u64;
            a.stall_events += r.stall_events as u64;
            a.persisted_bytes += r.persisted_bytes;
            a.max_batch = a.max_batch.max(r.batch);
            a.seq_lo = a.seq_lo.min(r.seq_start);
            a.seq_hi = a.seq_hi.max(r.seq_end);
        }
        if a.count == 0 {
            a.seq_lo = 0;
        }
        a
    }

    /// The `k` largest nonzero phase sums, largest first.
    pub fn top_phases(&self, k: usize) -> Vec<(Phase, u64)> {
        let mut v: Vec<(Phase, u64)> = ALL_PHASES
            .iter()
            .map(|&p| (p, self.phase_ns[p as usize]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by_key(|&(p, ns)| (std::cmp::Reverse(ns), p as usize));
        v.truncate(k);
        v
    }

    /// The `k` largest nonzero wait sums, largest first.
    pub fn top_waits(&self, k: usize) -> Vec<(Site, u64)> {
        let mut v: Vec<(Site, u64)> = ALL_SITES
            .iter()
            .map(|&s| (s, self.wait_ns[s as usize]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by_key(|&(s, ns)| (std::cmp::Reverse(ns), s as usize));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histo::{bucket_lower, bucket_upper, Histo};

    fn record_one(fl: &FlightRecorder, op: OpKind, at: u64, ns: u64) {
        fl.begin(op, at, 0);
        fl.finish(ns, 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let fl = FlightRecorder::new();
        record_one(&fl, OpKind::Write, 0, 100);
        assert_eq!(fl.recorded(), 0);
        assert!(fl.snapshot().all().is_empty());
        assert!(!ACTIVE.get(), "off path must not arm the TLS gate");
    }

    #[test]
    fn records_compose_span_contention_and_device_hooks() {
        let fl = FlightRecorder::new();
        fl.set_enabled(true);
        fl.begin(OpKind::Write, 1000, 7);
        note_phase(OpKind::Write as usize, Phase::DramCopy, 120);
        note_phase(OpKind::Write as usize, Phase::Persist, 300);
        note_phase(BG_ROW, Phase::Persist, 999_999); // detached: ignored
        note_wait(Site::PmfsJournal, 40);
        note_wait(Site::StallWriteback, 60);
        note_fence(1);
        note_fence(4); // one fence covering a 4-tx group commit
        note_persisted(256);
        note_shard(3);
        note_batch(4);
        note_batch(2);
        fl.finish(1000, 11);
        assert_eq!(fl.recorded(), 1);
        let snap = fl.snapshot();
        let r = snap.records(OpKind::Write)[0];
        assert_eq!(r.at_ns, 1000);
        assert_eq!(r.total_ns, 1000);
        assert_eq!((r.seq_start, r.seq_end), (7, 11));
        assert_eq!(r.phase_ns[Phase::DramCopy as usize], 120);
        assert_eq!(r.phase_ns[Phase::Persist as usize], 300);
        // Remainder lands in Other; the row sums to the total.
        assert_eq!(r.phase_ns[Phase::Other as usize], 1000 - 120 - 300);
        assert_eq!(r.phase_ns.iter().sum::<u64>(), r.total_ns);
        assert_eq!(r.wait_ns[Site::PmfsJournal as usize], 40);
        assert_eq!(r.wait_ns[Site::StallWriteback as usize], 60);
        assert_eq!(r.stall_events, 1);
        assert_eq!(r.fences, 2);
        assert_eq!(r.fences_coalesced, 3);
        assert_eq!(r.persisted_bytes, 256);
        assert_eq!(r.shard, 3);
        assert_eq!(r.batch, 4);
        assert_eq!(
            r.top_phases(2),
            vec![(Phase::Other, 580), (Phase::Persist, 300)]
        );
        assert_eq!(r.top_waits(1), vec![(Site::StallWriteback, 60)]);
        assert!(!ACTIVE.get(), "gate must clear at finish");
    }

    #[test]
    fn nested_begin_same_recorder_retires_once_at_outer_finish() {
        let fl = FlightRecorder::new();
        fl.set_enabled(true);
        fl.begin(OpKind::Fsync, 0, 0);
        fl.begin(OpKind::Write, 10, 1); // nested: ignored, deepens frame
        fl.finish(5, 2);
        assert_eq!(fl.recorded(), 0, "inner finish must not retire");
        fl.finish(900, 3);
        assert_eq!(fl.recorded(), 1);
        let snap = fl.snapshot();
        assert_eq!(snap.records(OpKind::Fsync).len(), 1);
        assert!(snap.records(OpKind::Write).is_empty());
        assert_eq!(snap.records(OpKind::Fsync)[0].total_ns, 900);
    }

    #[test]
    fn second_recorder_does_not_steal_or_retire_foreign_frame() {
        let outer = FlightRecorder::new();
        let inner = FlightRecorder::new();
        outer.set_enabled(true);
        inner.set_enabled(true);
        outer.begin(OpKind::Write, 0, 0);
        inner.begin(OpKind::Write, 5, 1);
        inner.finish(50, 2);
        assert_eq!(inner.recorded(), 0);
        assert!(ACTIVE.get(), "outer frame must survive the inner pair");
        outer.finish(200, 3);
        assert_eq!(outer.recorded(), 1);
        assert_eq!(outer.snapshot().records(OpKind::Write)[0].total_ns, 200);
    }

    #[test]
    fn reservoir_keeps_topk_slowest_per_op() {
        let fl = FlightRecorder::new();
        fl.set_enabled(true);
        for i in 0..100u64 {
            record_one(&fl, OpKind::Read, i, i + 1);
        }
        assert_eq!(fl.recorded(), 100);
        let snap = fl.snapshot();
        let recs = snap.records(OpKind::Read);
        assert_eq!(recs.len(), FLIGHT_TOPK.min(FLIGHT_MERGED_TOPK));
        assert_eq!(recs[0].total_ns, 100);
        assert!(recs.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
        assert_eq!(recs.last().unwrap().total_ns, 100 - FLIGHT_TOPK as u64 + 1);
        fl.reset();
        assert_eq!(fl.recorded(), 0);
        assert!(fl.snapshot().all().is_empty());
    }

    #[test]
    fn exemplars_agree_with_histogram_buckets() {
        // The exemplar ↔ bucket contract: a record keyed to bucket b has
        // bucket_lower(b) <= total_ns <= bucket_upper(b), and the cohort
        // of the histogram's pXX contains exactly the records at or above
        // the quantile's bucket.
        let fl = FlightRecorder::new();
        let h = Histo::new();
        fl.set_enabled(true);
        let samples: Vec<u64> = (1..=200u64).map(|i| i * 97).collect();
        for (i, &ns) in samples.iter().enumerate() {
            h.record(ns);
            record_one(&fl, OpKind::Write, i as u64, ns);
        }
        let snap = fl.snapshot();
        for r in snap.all() {
            let b = r.bucket();
            assert!(bucket_lower(b) <= r.total_ns && r.total_ns <= bucket_upper(b));
        }
        let p99 = h.snapshot().quantile(0.99);
        let cohort = snap.cohort(p99);
        assert!(!cohort.is_empty(), "top-K exemplars must cover the p99");
        for r in &cohort {
            assert!(
                r.bucket() >= bucket_of(p99),
                "cohort record below the p99 bucket"
            );
        }
        let a = TailAnatomy::aggregate(cohort.iter().copied());
        assert_eq!(a.count, cohort.len() as u64);
        assert_eq!(a.total_ns, cohort.iter().map(|r| r.total_ns).sum::<u64>());
        assert_eq!(a.phase_ns.iter().sum::<u64>(), a.total_ns);
    }
}
